// Cross-layer latency attribution: per-op critical-path decomposition.
//
// Every RMA operation the core engine issues gets a globally unique op tag
// (origin rank + request id). The tag rides along everywhere work happens on
// the op's behalf — fabric packets (including reliability retransmit copies
// and replication mirror streams), topology hop reservations, portals EQ
// delivery, atomicity serializer queues — and each layer reports the
// intervals it spends on the op to the OpTimeline as (tag, segment, t0, t1).
// When the op completes, the timeline decomposes its end-to-end latency into
// named segments with a hard conservation invariant: the segments sum
// EXACTLY to the measured end-to-end time.
//
// Segments (DESIGN.md §10):
//   serialize_wait — queued at the target waiting for the atomicity
//                    serializer (comm thread backlog / progress pickup)
//   lock_wait      — waiting for a remote lock grant (coarse-grain lock
//                    serializer, passive-target epochs)
//   inject         — origin NIC injection overhead
//   wire           — request-leg transmission: serialization + link latency
//                    (per physical hop under src/topo)
//   contention     — request-leg stalls: per-link FIFO queueing, rx
//                    occupancy, in-order delivery clamps
//   retransmit     — reliability-sublayer delay: a packet was re-injected;
//                    the interval from its first send to the retransmission
//   failover       — replication failover stall: target died mid-op; from
//                    failure detection to the op's rescued completion
//   apply          — target-side execution: serializer AM processing,
//                    software accumulate/RMW application
//   delivery       — target-side EQ/delivery overhead on the request leg
//   completion     — completion propagation: the return leg (ack / reply /
//                    lock grant) in flight back to the origin, including its
//                    own stalls and delivery
//   other          — residual (origin host time not covered by any layer:
//                    software bookkeeping between segments)
//
// Overlapping reports are resolved deterministically: the op's [t0, t1] is
// cut at every reported boundary and each elementary slice is charged to the
// highest-priority segment covering it (priority = enum order above, with
// failover highest). Uncovered slices fall into `other`. Integer math
// everywhere; by construction the per-op segment vector sums exactly to
// t1 - t0, so conservation is an invariant, not a tolerance.
//
// Determinism/perturbation contract (same as the Recorder's): recording
// never advances virtual time, schedules events, or consumes rng draws. The
// engine allocates request ids unconditionally, so a run with an OpTimeline
// attached takes exactly the same virtual-time trajectory as one without.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace m3rma::trace {

using Time = std::uint64_t;

// ----- op tags ---------------------------------------------------------------

/// Compose an op tag from the origin rank and its per-engine request id.
/// Tag 0 means "untagged" (packets not issued on behalf of a tracked op),
/// hence the +1 on the rank.
inline constexpr std::uint64_t op_tag(int origin_rank, std::uint64_t id) {
  return (static_cast<std::uint64_t>(origin_rank + 1) << 40) |
         (id & ((1ULL << 40) - 1));
}
inline constexpr int op_origin(std::uint64_t tag) {
  return static_cast<int>(tag >> 40) - 1;
}

// ----- segments --------------------------------------------------------------

/// Priority order: when reported intervals overlap, the LOWEST enum value
/// wins the slice. `other` is the residual and never reported explicitly.
enum class Segment : std::uint8_t {
  failover = 0,
  retransmit,
  lock_wait,
  serialize_wait,
  apply,
  delivery,
  inject,
  contention,
  wire,
  notify,
  completion,
  other,
};
inline constexpr int kSegmentCount = 12;
const char* segment_name(Segment s);

// ----- the timeline ----------------------------------------------------------

class OpTimeline {
 public:
  /// Begin tracking an op. `name` is the op kind ("rma.put"), `attrs` the
  /// attribute set ("blocking+ordering"), `api` the issuing interface
  /// ("strawman", "armci", ...). Reports for the tag (and its aliases)
  /// between begin and end are attributed to this op.
  void op_begin(std::uint64_t tag, std::string name, std::string attrs,
                std::string api, Time t0);

  /// Complete the op: decompose [t0, t1] into segments. Ops never ended
  /// (still in flight at teardown) are excluded from breakdowns.
  void op_end(std::uint64_t tag, Time t1);

  /// Fold a child request's tag into its parent op (inner get/put of a
  /// locked op, lock-acquire round trips, RMW sub-ops, mirror streams).
  /// Must be registered before the child's work is reported.
  void alias(std::uint64_t child_tag, std::uint64_t parent_tag);

  /// Report an interval of work on the op's behalf. Safe on unknown or
  /// untagged (0) tags — the report is dropped. Inverted intervals are
  /// clamped. Callable with timestamps in the virtual future (topology
  /// reservations), like Recorder::span_at.
  void add(std::uint64_t tag, Segment s, Time t0, Time t1);

  /// True when work for `tag` would be kept — the call-site guard that
  /// keeps untracked traffic from building report strings.
  bool tracks(std::uint64_t tag) const;

  // ----- results -------------------------------------------------------------

  struct Breakdown {
    std::string name;   ///< op kind ("rma.put")
    std::string attrs;  ///< attribute set ("blocking+ordering")
    std::string api;    ///< issuing interface ("strawman")
    Time t0 = 0;
    Time t1 = 0;
    std::array<Time, kSegmentCount> seg{};  ///< sums exactly to t1 - t0
    Time total() const { return t1 - t0; }
  };
  /// Completed ops, in completion order (deterministic).
  const std::vector<Breakdown>& ops() const { return done_; }

  /// Aggregated waterfall over a group of ops.
  struct Waterfall {
    std::uint64_t count = 0;
    Time end_to_end = 0;                      ///< sum over ops
    std::array<Time, kSegmentCount> seg{};    ///< sums to end_to_end
  };
  /// Group completed ops by "name[attrs]" (the Fig. 2 axis).
  std::map<std::string, Waterfall> by_attrs() const;
  /// Group completed ops by api (the Table S6 axis).
  std::map<std::string, Waterfall> by_api() const;
  /// Aggregate a caller-selected subset (e.g. the p99.9 tail).
  template <class Pred>
  Waterfall aggregate(Pred&& keep) const {
    Waterfall w;
    for (const Breakdown& b : done_) {
      if (!keep(b)) continue;
      accumulate(w, b);
    }
    return w;
  }

  /// Conservation self-check: every completed op's segments sum exactly to
  /// its end-to-end time. Structurally guaranteed; exported so benches and
  /// tests can assert it end-to-end.
  bool conservation_ok() const;
  std::uint64_t completed_ops() const { return done_.size(); }
  std::uint64_t open_ops() const;

  /// Nearest-rank percentile of completed-op end-to-end latency, optionally
  /// restricted to ops whose "name[attrs]" key matches `key` (empty = all).
  std::optional<Time> latency_percentile(double pct,
                                         const std::string& key = {}) const;

  // ----- export --------------------------------------------------------------

  /// Segment-keyed flame export: lines of
  ///   api;name[attrs];segment total_ns count
  /// sorted by stack, byte-deterministic (same format as
  /// Recorder::write_flame).
  void write_flame(std::ostream& os) const;

  /// Machine-readable breakdown: per-group waterfalls (by attrs and by api)
  /// plus the conservation verdict, as JSON. Integer nanoseconds only.
  void write_json(std::ostream& os) const;

 private:
  struct Live {
    std::string name, attrs, api;
    Time t0 = 0;
    bool open = false;
    /// Reported raw intervals, in report order: (segment, t0, t1).
    std::vector<std::array<Time, 3>> iv;
  };

  static void accumulate(Waterfall& w, const Breakdown& b);
  std::uint64_t resolve(std::uint64_t tag) const;

  std::map<std::uint64_t, Live> live_;
  std::map<std::uint64_t, std::uint64_t> alias_;
  std::vector<Breakdown> done_;
};

class Recorder;
/// Call-site guard: the attached timeline, or nullptr when attribution is
/// off (no recorder / no timeline). Mirrors trace::want for the Recorder.
OpTimeline* timeline(Recorder* r);

}  // namespace m3rma::trace
