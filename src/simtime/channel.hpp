// Typed message channel between simulated processes.
//
// A Channel is the basic rendezvous used by NIC event queues, communication
// threads and the runtime's matching engine. push() never blocks (infinite
// buffering — flow control is modeled at the fabric layer); recv() blocks
// the calling process until a message is available.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "simtime/engine.hpp"

namespace m3rma::sim {

template <class T>
class Channel {
 public:
  explicit Channel(Engine& e) : cond_(e) {}

  /// Enqueue a message and wake any blocked receivers. Callable from process
  /// or event (delivery) context.
  void push(T v) {
    q_.push_back(std::move(v));
    cond_.notify_all();
  }

  /// Block until a message is available, then dequeue it.
  T recv(Context& ctx) {
    ctx.await_until(cond_, [this] { return !q_.empty(); });
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  /// Dequeue without blocking; empty optional if no message is pending.
  std::optional<T> try_recv() {
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  Condition& condition() { return cond_; }

 private:
  std::deque<T> q_;
  Condition cond_;
};

}  // namespace m3rma::sim
