// Cooperative discrete-event simulation engine.
//
// m3rma runs every "MPI rank", communication thread, and NIC event of the
// simulated machine under this engine. Simulated processes are real
// std::threads, but a baton protocol guarantees exactly one runs at a time,
// so the simulation is sequential, deterministic, and race-free by
// construction. Virtual time (nanoseconds) advances only through the event
// queue; a process that computes without calling delay() takes zero virtual
// time, which is the standard DES convention.
//
// Blocking primitives available to a process:
//   * Context::delay(ns)  — advance this process's view of time
//   * Context::await(c)   — sleep until Condition c is notified
//   * Channel<T>::recv    — built on Condition (see channel.hpp)
//
// Event callbacks (message deliveries, timers) run in the scheduler's
// context, also exclusively, so they may touch shared simulation state
// freely and may notify conditions / schedule further events.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/rng.hpp"

namespace m3rma::trace {
class Recorder;
}

namespace m3rma::sim {

/// Virtual time in nanoseconds since simulation start.
using Time = std::uint64_t;

class Engine;
class Condition;

/// Handle a simulated process uses to interact with the engine. Each process
/// body receives a reference to its own Context; it must not be shared with
/// other processes.
class Context {
 public:
  Time now() const;

  /// Advance virtual time by `ns` for this process (sleep).
  void delay(Time ns);

  /// Relinquish control, letting all other events scheduled for the current
  /// instant run before this process continues. Equivalent to delay(0).
  void yield();

  /// Block until `c` is notified. Use await_until for predicate waits —
  /// a notification does not imply any particular state.
  void await(Condition& c);

  /// Block until `pred()` holds, re-checking each time `c` is notified.
  template <class Pred>
  void await_until(Condition& c, Pred&& pred) {
    while (!pred()) await(c);
  }

  Engine& engine() const { return *eng_; }
  int pid() const { return pid_; }
  const std::string& name() const;

 private:
  friend class Engine;
  Context(Engine* e, int pid) : eng_(e), pid_(pid) {}
  Engine* eng_;
  int pid_;
};

/// Wait/notify rendezvous for simulated processes. Notification wakes every
/// current waiter at the current virtual instant (they resume in pid order
/// of the scheduled wake events). Level-triggered use requires a predicate
/// loop; prefer Context::await_until.
class Condition {
 public:
  explicit Condition(Engine& e) : eng_(&e) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Wake all processes currently blocked in await(). Callable from process
  /// or event context.
  void notify_all();

  bool has_waiters() const { return !waiters_.empty(); }

 private:
  friend class Context;
  Engine* eng_;
  std::vector<int> waiters_;
};

/// The discrete-event scheduler. See file comment for the execution model.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a simulated process. Daemon processes (service loops such as
  /// communication threads) do not keep the simulation alive: run() returns
  /// once every non-daemon process has finished, and daemons are then shut
  /// down by unwinding their stacks.
  ///
  /// May be called before run() (process starts at time 0) or from inside a
  /// running simulation (process starts at the current instant).
  int spawn(std::string name, std::function<void(Context&)> fn,
            bool daemon = false);

  /// Schedule `fn` to run in scheduler context at now + after.
  void schedule_in(Time after, std::function<void()> fn);
  void schedule_at(Time t, std::function<void()> fn);

  /// Run the simulation to completion. Throws DeadlockError if every live
  /// non-daemon process is blocked with no pending event, and rethrows the
  /// first exception escaping any process body.
  void run();

  /// Fail-stop kill: the process stops executing at its current (or next)
  /// blocking point — its stack unwinds via an internal signal its body
  /// cannot catch, destructors run, and it counts as finished. Idempotent;
  /// a no-op on already-finished processes. Callable from event or process
  /// context (a process may even kill itself; it dies at its next block).
  void kill(int pid);
  /// True when kill() has been requested for a live process.
  bool kill_requested(int pid) const;

  Time now() const { return now_; }
  SplitMix64& rng() { return rng_; }
  /// The seed this engine (and its rng stream) was constructed with.
  /// Subsystems that need independent derived streams (e.g. per-link fabric
  /// randomness) mix this with their own identity instead of consuming from
  /// rng(), so their draws do not perturb anyone else's sequence.
  std::uint64_t seed() const { return seed_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t context_switches() const { return context_switches_; }
  int live_process_count() const { return live_nondaemon_; }

  /// Attach (or detach, with nullptr) a trace recorder. The engine stamps
  /// the recorder with its virtual clock, records process block/wake spans
  /// (Category::sim), and annotates DeadlockError with each blocked
  /// process's last recorded trace site. Upper layers reach the recorder
  /// through tracer() — with none attached, instrumentation costs one
  /// null-pointer check and runs are byte-identical to untraced builds.
  void set_tracer(trace::Recorder* t);
  trace::Recorder* tracer() const { return tracer_; }

 private:
  friend class Context;
  friend class Condition;

  struct ShutdownSignal {};
  /// Like ShutdownSignal, but for a single fail-stop-killed process: thrown
  /// out of its blocking calls so its stack unwinds mid-simulation while the
  /// rest of the world keeps running.
  struct KillSignal {};

  struct ProcessState {
    std::string name;
    std::function<void(Context&)> fn;
    std::thread thread;
    std::condition_variable cv;
    bool started = false;
    bool finished = false;
    bool daemon = false;
    bool wake_pending = false;
    bool killed = false;
    int trace_track = -1;           // lazily created recorder track
    std::uint64_t blocked_span = 0;  // open Category::sim "blocked" span
    std::string last_site;           // last trace site when it blocked
  };

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void process_main(int pid);
  /// Give the baton to `pid` and wait until it blocks, finishes or throws.
  void dispatch(int pid);
  /// Called by the running process to give the baton back; returns when the
  /// process is dispatched again. Throws ShutdownSignal during teardown.
  void block_current(int pid);
  /// Schedule `pid` to be dispatched at the current instant (idempotent per
  /// blocking period).
  void wake(int pid);
  /// Entry guard of every blocking primitive: a killed process dies at the
  /// point it would next give up the baton (covers blocking calls made while
  /// its destructors unwind, too).
  void check_killed(int pid);
  void shutdown_all();
  /// Tracing: snapshot the process's last trace site and open its blocked
  /// span. Called by the process itself right before it gives up the baton.
  void note_block(int pid, const char* why);

  std::mutex mu_;
  std::condition_variable sched_cv_;
  int running_pid_ = -1;  // -1: scheduler owns the baton
  bool shutdown_ = false;

  std::vector<std::unique_ptr<ProcessState>> procs_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t context_switches_ = 0;
  int live_nondaemon_ = 0;
  bool in_run_ = false;
  std::exception_ptr failure_;
  SplitMix64 rng_;
  std::uint64_t seed_;
  trace::Recorder* tracer_ = nullptr;
};

}  // namespace m3rma::sim
