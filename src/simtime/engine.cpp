#include "simtime/engine.hpp"

#include <sstream>

#include "trace/recorder.hpp"

namespace m3rma::sim {

// ---------------------------------------------------------------- Context

Time Context::now() const { return eng_->now(); }

const std::string& Context::name() const {
  return eng_->procs_[static_cast<std::size_t>(pid_)]->name;
}

void Context::delay(Time ns) {
  Engine* e = eng_;
  const int pid = pid_;
  e->check_killed(pid);
  e->schedule_in(ns, [e, pid] { e->dispatch(pid); });
  e->note_block(pid, "delay");
  e->block_current(pid);
}

void Context::yield() { delay(0); }

void Context::await(Condition& c) {
  M3RMA_ENSURE(c.eng_ == eng_, "Condition belongs to a different engine");
  eng_->check_killed(pid_);
  c.waiters_.push_back(pid_);
  eng_->note_block(pid_, "await");
  eng_->block_current(pid_);
}

// -------------------------------------------------------------- Condition

void Condition::notify_all() {
  if (waiters_.empty()) return;
  std::vector<int> ws;
  ws.swap(waiters_);
  for (int pid : ws) eng_->wake(pid);
}

// ----------------------------------------------------------------- Engine

Engine::Engine(std::uint64_t seed) : rng_(seed), seed_(seed) {}

Engine::~Engine() { shutdown_all(); }

void Engine::set_tracer(trace::Recorder* t) {
  tracer_ = t;
  if (t != nullptr) t->bind_clock(&now_);
}

void Engine::note_block(int pid, const char* why) {
  if (tracer_ == nullptr) return;
  ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  // Snapshot first: the simulation is sequential, so the recorder's most
  // recent (non-sim) record is what this process was doing when it blocked.
  ps.last_site = tracer_->last_site();
  if (auto* tr = trace::want(tracer_, trace::Category::sim)) {
    if (ps.trace_track < 0) ps.trace_track = tr->track(ps.name);
    ps.blocked_span =
        tr->span_begin(ps.trace_track, trace::Category::sim, why);
  }
}

int Engine::spawn(std::string name, std::function<void(Context&)> fn,
                  bool daemon) {
  M3RMA_ENSURE(!shutdown_, "spawn after shutdown");
  const int pid = static_cast<int>(procs_.size());
  auto ps = std::make_unique<ProcessState>();
  ps->name = std::move(name);
  ps->fn = std::move(fn);
  ps->daemon = daemon;
  if (!daemon) ++live_nondaemon_;
  procs_.push_back(std::move(ps));
  procs_.back()->thread = std::thread(&Engine::process_main, this, pid);
  wake(pid);  // first dispatch at the current instant (time 0 before run())
  return pid;
}

void Engine::schedule_in(Time after, std::function<void()> fn) {
  schedule_at(now_ + after, std::move(fn));
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  M3RMA_ENSURE(t >= now_, "cannot schedule an event in the past");
  events_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::run() {
  M3RMA_ENSURE(!in_run_, "Engine::run is not reentrant");
  in_run_ = true;
  while (true) {
    if (failure_) break;
    if (events_.empty()) {
      if (live_nondaemon_ == 0) break;  // drained; all real work finished
      // Live non-daemon processes exist but nothing can ever wake them.
      std::ostringstream os;
      os << "simulation deadlock at t=" << now_ << "ns; blocked processes:";
      for (const auto& p : procs_) {
        if (!p->finished) {
          os << " " << p->name;
          if (tracer_ != nullptr && !p->last_site.empty()) {
            os << " (last: " << p->last_site << ")";
          }
        }
      }
      failure_ = std::make_exception_ptr(DeadlockError(os.str()));
      break;
    }
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.t;
    ++events_processed_;
    if (auto* tr = trace::want(tracer_, trace::Category::sim)) {
      tr->add_counter(trace::Category::sim, "sim.events");
    }
    try {
      ev.fn();
    } catch (...) {
      // Event callbacks (message deliveries, AM handlers) may throw; treat
      // it as a simulation failure so teardown still runs in order.
      if (!failure_) failure_ = std::current_exception();
    }
  }
  shutdown_all();
  in_run_ = false;
  if (failure_) {
    auto f = failure_;
    failure_ = nullptr;
    std::rethrow_exception(f);
  }
}

void Engine::process_main(int pid) {
  ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  {
    std::unique_lock<std::mutex> l(mu_);
    ps.cv.wait(l, [&] { return running_pid_ == pid || shutdown_; });
    if (shutdown_) {
      ps.finished = true;
      return;
    }
    ps.started = true;
  }
  Context ctx(this, pid);
  std::exception_ptr err;
  try {
    ps.fn(ctx);
  } catch (const ShutdownSignal&) {
    // Normal teardown of a blocked process.
  } catch (const KillSignal&) {
    // Fail-stop death (Engine::kill): the body unwound mid-simulation and
    // the rest of the world keeps running.
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> l(mu_);
    if (err && !failure_) failure_ = err;
    ps.finished = true;
    if (!ps.daemon) --live_nondaemon_;
    running_pid_ = -1;
    sched_cv_.notify_one();
  }
}

void Engine::dispatch(int pid) {
  ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  if (ps.finished) return;
  ps.wake_pending = false;
  if (tracer_ != nullptr && ps.blocked_span != 0) {
    tracer_->span_end(ps.blocked_span);
    ps.blocked_span = 0;
  }
  std::unique_lock<std::mutex> l(mu_);
  ++context_switches_;
  running_pid_ = pid;
  ps.cv.notify_one();
  sched_cv_.wait(l, [&] { return running_pid_ == -1; });
}

void Engine::block_current(int pid) {
  ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  std::unique_lock<std::mutex> l(mu_);
  running_pid_ = -1;
  sched_cv_.notify_one();
  ps.cv.wait(l, [&] { return running_pid_ == pid || shutdown_; });
  if (shutdown_) throw ShutdownSignal{};
  if (ps.killed) throw KillSignal{};
}

void Engine::wake(int pid) {
  ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  if (ps.finished || ps.wake_pending) return;
  ps.wake_pending = true;
  schedule_in(0, [this, pid] { dispatch(pid); });
}

void Engine::check_killed(int pid) {
  if (procs_[static_cast<std::size_t>(pid)]->killed) throw KillSignal{};
}

void Engine::kill(int pid) {
  M3RMA_REQUIRE(pid >= 0 && pid < static_cast<int>(procs_.size()),
                "kill of an unknown process");
  ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  if (ps.finished || ps.killed) return;
  // The flag is only read while the process (or the scheduler) holds the
  // baton, so the baton handoff already orders this write; the wake makes a
  // blocked victim re-examine it at the current instant.
  ps.killed = true;
  wake(pid);
}

bool Engine::kill_requested(int pid) const {
  if (pid < 0 || pid >= static_cast<int>(procs_.size())) return false;
  const ProcessState& ps = *procs_[static_cast<std::size_t>(pid)];
  return ps.killed && !ps.finished;
}

void Engine::shutdown_all() {
  {
    std::unique_lock<std::mutex> l(mu_);
    shutdown_ = true;
    for (auto& p : procs_) p->cv.notify_all();
  }
  for (auto& p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
}

}  // namespace m3rma::sim
