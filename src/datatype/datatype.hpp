// MPI-style datatype engine.
//
// Strawman requirement 7 (paper §IV): "Transfers of noncontiguous data,
// including strided (vector) and scatter/gather must be supported", using
// "existing MPI concepts such as ... datatypes for heterogeneity and
// noncontiguous data".
//
// A Datatype is an immutable tree describing a memory layout:
//   predefined -> contiguous -> vector/hvector -> indexed/hindexed -> struct
// It provides
//   * size()/extent() queries,
//   * pack/unpack between a laid-out buffer and a packed wire image,
//   * for_each_block(): the maximal contiguous segments of a (type, count)
//     region — RMA layers turn these into per-segment network operations,
//   * byteswap_packed(): endianness conversion of a packed image by leaf
//     element size (paper §III-B3 heterogeneity),
//   * type signatures for origin/target compatibility checking.
//
// Datatype values are cheap shared handles; the tree itself is immutable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace m3rma::dt {

/// One maximal contiguous run of identical-size leaf elements.
struct Block {
  std::uint64_t mem_offset;     ///< byte offset from the region base
  std::uint64_t packed_offset;  ///< byte offset in the packed image
  std::uint32_t elem_size;      ///< leaf element size in bytes
  std::uint64_t elem_count;     ///< number of leaf elements in the run

  std::uint64_t nbytes() const {
    return std::uint64_t{elem_size} * elem_count;
  }
};

/// Numeric identity of a predefined leaf type. Needed by accumulate-style
/// operations, which must know how to combine elements, not just move them.
enum class LeafKind : std::uint8_t {
  bytes,  // opaque (byte)
  i8,
  i16,
  i32,
  i64,
  u64,
  f32,
  f64,
};

/// One entry of a type signature: `count` leaf elements of `elem_size`
/// bytes, in packed order (adjacent equal sizes collapsed).
struct SigEntry {
  std::uint32_t elem_size;
  std::uint64_t count;
  friend bool operator==(const SigEntry&, const SigEntry&) = default;
};

class Datatype {
 public:
  /// Default-constructed handle is empty and unusable; assign before use.
  Datatype() = default;

  // ----- predefined types -------------------------------------------------
  static Datatype byte();
  static Datatype int8();
  static Datatype int16();
  static Datatype int32();
  static Datatype int64();
  static Datatype uint64();
  static Datatype float32();
  static Datatype float64();

  /// Predefined type matching a C++ arithmetic type.
  template <class T>
  static Datatype of();

  // ----- constructors for derived types ------------------------------------
  static Datatype contiguous(std::uint64_t count, const Datatype& base);
  /// `count` blocks of `blocklen` elements, block starts `stride` elements
  /// apart (stride measured in base-type extents, like MPI_Type_vector).
  static Datatype vector(std::uint64_t count, std::uint64_t blocklen,
                         std::uint64_t stride, const Datatype& base);
  /// vector with stride in bytes (MPI_Type_create_hvector).
  static Datatype hvector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride_bytes, const Datatype& base);
  /// Scatter/gather: block i has blocklens[i] elements at element
  /// displacement displs[i] (MPI_Type_indexed).
  static Datatype indexed(std::span<const std::uint64_t> blocklens,
                          std::span<const std::uint64_t> displs,
                          const Datatype& base);
  /// indexed with byte displacements (MPI_Type_create_hindexed).
  static Datatype hindexed(std::span<const std::uint64_t> blocklens,
                           std::span<const std::uint64_t> displs_bytes,
                           const Datatype& base);
  /// Heterogeneous record (MPI_Type_create_struct); field i is blocklens[i]
  /// elements of types[i] at byte displacement displs_bytes[i].
  static Datatype structure(std::span<const std::uint64_t> blocklens,
                            std::span<const std::uint64_t> displs_bytes,
                            std::span<const Datatype> types);
  /// 2D subarray (MPI_Type_create_subarray, row-major): the
  /// sub_rows x sub_cols region at (row_start, col_start) of a
  /// rows x cols array of `base`. Note: unlike the other constructors the
  /// element's extent spans only the covered rows; use it for one region
  /// per transfer (count = 1), the common halo/patch case.
  static Datatype subarray2d(std::uint64_t rows, std::uint64_t cols,
                             std::uint64_t sub_rows, std::uint64_t sub_cols,
                             std::uint64_t row_start,
                             std::uint64_t col_start, const Datatype& base);

  bool valid() const { return node_ != nullptr; }

  /// Packed payload bytes of one element of this type.
  std::uint64_t size() const;
  /// Memory span of one element, including holes.
  std::uint64_t extent() const;
  /// True when one element occupies exactly size() adjacent bytes.
  bool is_contiguous() const;
  /// Leaf-run signature (collapsed); two types may be paired as
  /// origin/target of a transfer iff their signatures are equal elementwise
  /// after scaling by the respective counts.
  const std::vector<SigEntry>& signature() const;
  /// The single numeric kind shared by every leaf, if uniform (required by
  /// accumulate and RMW); LeafKind::bytes-typed and mixed trees report their
  /// kind / nullopt-like bytes accordingly.
  bool has_uniform_leaf() const;
  LeafKind uniform_leaf() const;  ///< valid only when has_uniform_leaf()

  /// Human-readable description for diagnostics.
  std::string describe() const;

  // ----- layout traversal --------------------------------------------------

  using BlockFn = std::function<void(const Block&)>;
  /// Visit the maximal contiguous runs of `count` consecutive elements of
  /// this type laid out starting at region offset 0, in packed order.
  void for_each_block(std::uint64_t count, const BlockFn& fn) const;

  /// Number of maximal contiguous runs in `count` elements.
  std::uint64_t block_count(std::uint64_t count) const;

  // ----- pack / unpack ------------------------------------------------------

  /// Gather `count` elements laid out at `base` into packed bytes at `out`
  /// (out must hold count*size() bytes).
  void pack(const std::byte* base, std::uint64_t count, std::byte* out) const;
  /// Scatter packed bytes into the layout at `base`.
  void unpack(const std::byte* in, std::uint64_t count,
              std::byte* base) const;
  /// Reverse the byte order of every leaf element inside a packed image of
  /// `count` elements (no-op for 1-byte leaves).
  void byteswap_packed(std::byte* packed, std::uint64_t count) const;

  /// True if `count` elements of this type carry the same leaf sequence as
  /// `other_count` elements of `other` (MPI signature matching).
  bool matches(std::uint64_t count, const Datatype& other,
               std::uint64_t other_count) const;

  friend bool operator==(const Datatype& a, const Datatype& b) {
    return a.node_ == b.node_;
  }

  /// Implementation node; opaque outside datatype.cpp but publicly named so
  /// file-local helpers can be defined over it.
  struct Node;

 private:
  explicit Datatype(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  const Node& node() const;

  std::shared_ptr<const Node> node_;
};

template <class T>
Datatype Datatype::of() {
  if constexpr (sizeof(T) == 1) {
    return byte();
  } else if constexpr (std::is_same_v<T, float>) {
    return float32();
  } else if constexpr (std::is_same_v<T, double>) {
    return float64();
  } else if constexpr (sizeof(T) == 2) {
    return int16();
  } else if constexpr (sizeof(T) == 4) {
    return int32();
  } else {
    static_assert(sizeof(T) == 8, "unsupported element width");
    return int64();
  }
}

}  // namespace m3rma::dt
