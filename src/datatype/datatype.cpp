#include "datatype/datatype.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/byteorder.hpp"
#include "common/diagnostics.hpp"

namespace m3rma::dt {

// ------------------------------------------------------------------- Node

struct Datatype::Node {
  enum class Kind {
    predefined,
    contiguous,
    vec,
    hvec,
    indexed,
    hindexed,
    structure,
  };

  Kind kind = Kind::predefined;
  std::string name;            // predefined only
  std::uint32_t elem = 0;      // predefined element size
  std::uint64_t count = 0;     // contiguous / vec / hvec
  std::uint64_t blocklen = 0;  // vec / hvec
  std::uint64_t stride = 0;    // vec: elements; hvec: bytes
  std::vector<std::uint64_t> blocklens;  // indexed / hindexed / structure
  std::vector<std::uint64_t> displs;     // indexed: elements; others: bytes
  std::vector<std::shared_ptr<const Node>> children;

  // Cached derived properties (set by finalize()).
  std::uint64_t size = 0;
  std::uint64_t extent = 0;
  bool contiguous_layout = false;
  bool uniform = false;
  LeafKind leaf = LeafKind::bytes;
  std::vector<SigEntry> signature;

  using RawFn =
      std::function<void(std::uint64_t off, std::uint32_t elem_size,
                         std::uint64_t nelems)>;
  void walk(std::uint64_t off, const RawFn& f) const;
};

void Datatype::Node::walk(std::uint64_t off, const RawFn& f) const {
  switch (kind) {
    case Kind::predefined:
      f(off, elem, 1);
      break;
    case Kind::contiguous: {
      const Node& c = *children[0];
      if (c.kind == Kind::predefined) {
        if (count > 0) f(off, c.elem, count);
      } else {
        for (std::uint64_t i = 0; i < count; ++i) {
          c.walk(off + i * c.extent, f);
        }
      }
      break;
    }
    case Kind::vec:
    case Kind::hvec: {
      const Node& c = *children[0];
      const std::uint64_t step =
          kind == Kind::vec ? stride * c.extent : stride;
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t base = off + i * step;
        if (c.kind == Kind::predefined) {
          if (blocklen > 0) f(base, c.elem, blocklen);
        } else {
          for (std::uint64_t b = 0; b < blocklen; ++b) {
            c.walk(base + b * c.extent, f);
          }
        }
      }
      break;
    }
    case Kind::indexed:
    case Kind::hindexed: {
      const Node& c = *children[0];
      for (std::size_t k = 0; k < blocklens.size(); ++k) {
        const std::uint64_t base =
            off + (kind == Kind::indexed ? displs[k] * c.extent : displs[k]);
        if (c.kind == Kind::predefined) {
          if (blocklens[k] > 0) f(base, c.elem, blocklens[k]);
        } else {
          for (std::uint64_t b = 0; b < blocklens[k]; ++b) {
            c.walk(base + b * c.extent, f);
          }
        }
      }
      break;
    }
    case Kind::structure: {
      for (std::size_t k = 0; k < blocklens.size(); ++k) {
        const Node& c = *children[k];
        const std::uint64_t base = off + displs[k];
        if (c.kind == Kind::predefined) {
          if (blocklens[k] > 0) f(base, c.elem, blocklens[k]);
        } else {
          for (std::uint64_t b = 0; b < blocklens[k]; ++b) {
            c.walk(base + b * c.extent, f);
          }
        }
      }
      break;
    }
  }
}

// ----------------------------------------------------------- construction

namespace {

void append_sig(std::vector<SigEntry>& sig, std::uint32_t elem,
                std::uint64_t count) {
  if (count == 0) return;
  if (!sig.empty() && sig.back().elem_size == elem) {
    sig.back().count += count;
  } else {
    sig.push_back(SigEntry{elem, count});
  }
}

}  // namespace

static void finalize(Datatype::Node& n);

const Datatype::Node& Datatype::node() const {
  M3RMA_REQUIRE(node_ != nullptr, "use of an empty Datatype handle");
  return *node_;
}

static std::shared_ptr<const Datatype::Node> make_predefined(
    std::string name, std::uint32_t elem, LeafKind leaf) {
  auto n = std::make_shared<Datatype::Node>();
  n->kind = Datatype::Node::Kind::predefined;
  n->name = std::move(name);
  n->elem = elem;
  n->leaf = leaf;
  n->uniform = true;
  finalize(*n);
  return n;
}

Datatype Datatype::byte() {
  static const auto n = make_predefined("byte", 1, LeafKind::bytes);
  return Datatype(n);
}
Datatype Datatype::int8() {
  static const auto n = make_predefined("int8", 1, LeafKind::i8);
  return Datatype(n);
}
Datatype Datatype::int16() {
  static const auto n = make_predefined("int16", 2, LeafKind::i16);
  return Datatype(n);
}
Datatype Datatype::int32() {
  static const auto n = make_predefined("int32", 4, LeafKind::i32);
  return Datatype(n);
}
Datatype Datatype::int64() {
  static const auto n = make_predefined("int64", 8, LeafKind::i64);
  return Datatype(n);
}
Datatype Datatype::uint64() {
  static const auto n = make_predefined("uint64", 8, LeafKind::u64);
  return Datatype(n);
}
Datatype Datatype::float32() {
  static const auto n = make_predefined("float32", 4, LeafKind::f32);
  return Datatype(n);
}
Datatype Datatype::float64() {
  static const auto n = make_predefined("float64", 8, LeafKind::f64);
  return Datatype(n);
}

Datatype Datatype::contiguous(std::uint64_t count, const Datatype& base) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::contiguous;
  n->count = count;
  n->children.push_back(base.node_);
  M3RMA_REQUIRE(base.valid(), "contiguous over empty datatype");
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::vector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride, const Datatype& base) {
  M3RMA_REQUIRE(base.valid(), "vector over empty datatype");
  M3RMA_REQUIRE(count == 0 || stride >= 1 || blocklen == 0,
                "vector stride must be positive");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::vec;
  n->count = count;
  n->blocklen = blocklen;
  n->stride = stride;
  n->children.push_back(base.node_);
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::hvector(std::uint64_t count, std::uint64_t blocklen,
                           std::uint64_t stride_bytes, const Datatype& base) {
  M3RMA_REQUIRE(base.valid(), "hvector over empty datatype");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::hvec;
  n->count = count;
  n->blocklen = blocklen;
  n->stride = stride_bytes;
  n->children.push_back(base.node_);
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::indexed(std::span<const std::uint64_t> blocklens,
                           std::span<const std::uint64_t> displs,
                           const Datatype& base) {
  M3RMA_REQUIRE(base.valid(), "indexed over empty datatype");
  M3RMA_REQUIRE(blocklens.size() == displs.size(),
                "indexed: blocklens/displs length mismatch");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::indexed;
  n->blocklens.assign(blocklens.begin(), blocklens.end());
  n->displs.assign(displs.begin(), displs.end());
  n->children.push_back(base.node_);
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::hindexed(std::span<const std::uint64_t> blocklens,
                            std::span<const std::uint64_t> displs_bytes,
                            const Datatype& base) {
  M3RMA_REQUIRE(base.valid(), "hindexed over empty datatype");
  M3RMA_REQUIRE(blocklens.size() == displs_bytes.size(),
                "hindexed: blocklens/displs length mismatch");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::hindexed;
  n->blocklens.assign(blocklens.begin(), blocklens.end());
  n->displs.assign(displs_bytes.begin(), displs_bytes.end());
  n->children.push_back(base.node_);
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::structure(std::span<const std::uint64_t> blocklens,
                             std::span<const std::uint64_t> displs_bytes,
                             std::span<const Datatype> types) {
  M3RMA_REQUIRE(blocklens.size() == displs_bytes.size() &&
                    blocklens.size() == types.size(),
                "structure: field array length mismatch");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::structure;
  n->blocklens.assign(blocklens.begin(), blocklens.end());
  n->displs.assign(displs_bytes.begin(), displs_bytes.end());
  for (const Datatype& t : types) {
    M3RMA_REQUIRE(t.valid(), "structure field uses empty datatype");
    n->children.push_back(t.node_);
  }
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::subarray2d(std::uint64_t rows, std::uint64_t cols,
                              std::uint64_t sub_rows, std::uint64_t sub_cols,
                              std::uint64_t row_start,
                              std::uint64_t col_start,
                              const Datatype& base) {
  M3RMA_REQUIRE(base.valid(), "subarray over empty datatype");
  M3RMA_REQUIRE(row_start + sub_rows <= rows &&
                    col_start + sub_cols <= cols,
                "subarray exceeds the array");
  M3RMA_REQUIRE(sub_rows > 0 && sub_cols > 0, "empty subarray");
  // sub_rows blocks of sub_cols elements, stride = cols elements, shifted
  // to (row_start, col_start) with a single hindexed displacement.
  const Datatype rows_t = Datatype::vector(sub_rows, sub_cols, cols, base);
  const std::uint64_t lens[] = {1};
  const std::uint64_t displs[] = {(row_start * cols + col_start) *
                                  base.extent()};
  return Datatype::hindexed(lens, displs, rows_t);
}

static void finalize(Datatype::Node& n) {
  using Kind = Datatype::Node::Kind;
  switch (n.kind) {
    case Kind::predefined:
      n.size = n.elem;
      n.extent = n.elem;
      break;
    case Kind::contiguous: {
      const auto& c = *n.children[0];
      n.size = n.count * c.size;
      n.extent = n.count * c.extent;
      break;
    }
    case Kind::vec: {
      const auto& c = *n.children[0];
      n.size = n.count * n.blocklen * c.size;
      n.extent = n.count == 0
                     ? 0
                     : ((n.count - 1) * n.stride + n.blocklen) * c.extent;
      break;
    }
    case Kind::hvec: {
      const auto& c = *n.children[0];
      n.size = n.count * n.blocklen * c.size;
      n.extent =
          n.count == 0 ? 0 : (n.count - 1) * n.stride + n.blocklen * c.extent;
      break;
    }
    case Kind::indexed:
    case Kind::hindexed: {
      const auto& c = *n.children[0];
      n.size = 0;
      n.extent = 0;
      for (std::size_t k = 0; k < n.blocklens.size(); ++k) {
        n.size += n.blocklens[k] * c.size;
        const std::uint64_t disp = n.kind == Kind::indexed
                                       ? n.displs[k] * c.extent
                                       : n.displs[k];
        n.extent =
            std::max(n.extent, disp + n.blocklens[k] * c.extent);
      }
      break;
    }
    case Kind::structure: {
      n.size = 0;
      n.extent = 0;
      for (std::size_t k = 0; k < n.blocklens.size(); ++k) {
        const auto& c = *n.children[k];
        n.size += n.blocklens[k] * c.size;
        n.extent =
            std::max(n.extent, n.displs[k] + n.blocklens[k] * c.extent);
      }
      break;
    }
  }

  // Uniform leaf kind: inherited when all children agree.
  if (n.kind != Kind::predefined) {
    n.uniform = !n.children.empty();
    n.leaf = n.children.empty() ? LeafKind::bytes : n.children[0]->leaf;
    for (const auto& c : n.children) {
      if (!c->uniform || c->leaf != n.leaf) {
        n.uniform = false;
        break;
      }
    }
  }

  // Signature and contiguity from one element's leaf runs.
  n.signature.clear();
  std::uint64_t covered = 0;
  bool adjacent = true;
  n.walk(0, [&](std::uint64_t off, std::uint32_t elem, std::uint64_t cnt) {
    append_sig(n.signature, elem, cnt);
    if (off != covered) adjacent = false;
    covered = off + std::uint64_t{elem} * cnt;
  });
  n.contiguous_layout = adjacent && covered == n.size && n.extent == n.size;
}

// ------------------------------------------------------------------ queries

std::uint64_t Datatype::size() const { return node().size; }
std::uint64_t Datatype::extent() const { return node().extent; }
bool Datatype::is_contiguous() const { return node().contiguous_layout; }
const std::vector<SigEntry>& Datatype::signature() const {
  return node().signature;
}

bool Datatype::has_uniform_leaf() const { return node().uniform; }

LeafKind Datatype::uniform_leaf() const {
  M3RMA_REQUIRE(node().uniform,
                "datatype mixes leaf kinds; accumulate needs a uniform type");
  return node().leaf;
}

std::string Datatype::describe() const {
  const Node& n = node();
  std::ostringstream os;
  switch (n.kind) {
    case Node::Kind::predefined:
      os << n.name;
      break;
    case Node::Kind::contiguous:
      os << "contiguous(" << n.count << ", "
         << Datatype(n.children[0]).describe() << ")";
      break;
    case Node::Kind::vec:
      os << "vector(" << n.count << "x" << n.blocklen << " stride " << n.stride
         << ", " << Datatype(n.children[0]).describe() << ")";
      break;
    case Node::Kind::hvec:
      os << "hvector(" << n.count << "x" << n.blocklen << " stride "
         << n.stride << "B, " << Datatype(n.children[0]).describe() << ")";
      break;
    case Node::Kind::indexed:
      os << "indexed(" << n.blocklens.size() << " blocks, "
         << Datatype(n.children[0]).describe() << ")";
      break;
    case Node::Kind::hindexed:
      os << "hindexed(" << n.blocklens.size() << " blocks, "
         << Datatype(n.children[0]).describe() << ")";
      break;
    case Node::Kind::structure:
      os << "struct(" << n.blocklens.size() << " fields)";
      break;
  }
  return os.str();
}

// ----------------------------------------------------------------- traversal

void Datatype::for_each_block(std::uint64_t count, const BlockFn& fn) const {
  const Node& n = node();
  Block cur{0, 0, 0, 0};
  bool have = false;
  std::uint64_t packed = 0;
  auto emit = [&](std::uint64_t off, std::uint32_t elem, std::uint64_t cnt) {
    const std::uint64_t bytes = std::uint64_t{elem} * cnt;
    if (have && cur.elem_size == elem &&
        cur.mem_offset + cur.nbytes() == off) {
      cur.elem_count += cnt;
    } else {
      if (have) fn(cur);
      cur = Block{off, packed, elem, cnt};
      have = true;
    }
    packed += bytes;
  };
  for (std::uint64_t e = 0; e < count; ++e) {
    n.walk(e * n.extent, emit);
  }
  if (have) fn(cur);
}

std::uint64_t Datatype::block_count(std::uint64_t count) const {
  std::uint64_t blocks = 0;
  for_each_block(count, [&](const Block&) { ++blocks; });
  return blocks;
}

// -------------------------------------------------------------- pack/unpack

void Datatype::pack(const std::byte* base, std::uint64_t count,
                    std::byte* out) const {
  for_each_block(count, [&](const Block& b) {
    std::memcpy(out + b.packed_offset, base + b.mem_offset, b.nbytes());
  });
}

void Datatype::unpack(const std::byte* in, std::uint64_t count,
                      std::byte* base) const {
  for_each_block(count, [&](const Block& b) {
    std::memcpy(base + b.mem_offset, in + b.packed_offset, b.nbytes());
  });
}

void Datatype::byteswap_packed(std::byte* packed, std::uint64_t count) const {
  std::uint64_t off = 0;
  for (std::uint64_t e = 0; e < count; ++e) {
    for (const SigEntry& s : node().signature) {
      swap_elements(packed + off, s.elem_size, s.count);
      off += std::uint64_t{s.elem_size} * s.count;
    }
  }
}

namespace {

/// Run-length view of a signature repeated `reps` times.
struct SigStream {
  const std::vector<SigEntry>& sig;
  std::uint64_t reps;
  std::uint64_t rep = 0;
  std::size_t idx = 0;
  std::uint64_t left = 0;

  /// Position on the next nonempty run; false when exhausted.
  bool refill() {
    while (left == 0) {
      if (rep >= reps || sig.empty()) return false;
      if (idx >= sig.size()) {
        idx = 0;
        ++rep;
        continue;
      }
      left = sig[idx].count;
      if (left == 0) ++idx;
    }
    return true;
  }
  std::uint32_t elem() const { return sig[idx].elem_size; }
  void consume(std::uint64_t n) {
    left -= n;
    if (left == 0) ++idx;
  }
};

}  // namespace

bool Datatype::matches(std::uint64_t count, const Datatype& other,
                       std::uint64_t other_count) const {
  // Compare the leaf streams of (this x count) and (other x other_count)
  // without materializing them.
  SigStream a{node().signature, count};
  SigStream b{other.node().signature, other_count};
  while (true) {
    const bool ha = a.refill();
    const bool hb = b.refill();
    if (!ha || !hb) return ha == hb;
    if (a.elem() != b.elem()) return false;
    const std::uint64_t take = std::min(a.left, b.left);
    a.consume(take);
    b.consume(take);
  }
}

}  // namespace m3rma::dt
