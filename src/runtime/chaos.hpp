// Chaos-schedule harness: seeded randomized fail-stop fault plans for
// multi-crash survivability studies (ROADMAP item 5 follow-on; Besta &
// Hoefler, arXiv 2010.09025).
//
// A ChaosSpec describes the *shape* of an adversarial schedule — how many
// crashes, which ranks are eligible victims, the time window, the
// announced/silent mix, and how tightly crashes may cluster (including
// "crash during the previous crash's re-replication window"). chaos_plan()
// expands it into a concrete FaultPlan deterministically from the seed:
// the same (spec, seed) pair always yields the same schedule, so every
// chaos run replays byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/world.hpp"

namespace m3rma::runtime {

struct ChaosSpec {
  /// Eligible victim ranks (e.g. the KV store's server ranks). Victims are
  /// drawn without replacement; at most victims.size() crashes occur, and a
  /// spec must always leave at least one eligible rank alive.
  std::vector<int> victims;
  /// Number of crashes to schedule (clamped to victims.size() -
  /// min_survivors so the workload keeps that many eligible ranks alive).
  int crashes = 2;
  /// How many victim ranks must survive the schedule. The default (1)
  /// always leaves a failover target among the victims; benches whose
  /// survivor lives outside the victim pool (a fixed-victim crash whose
  /// clients are elsewhere) set 0 to allow the whole pool to die.
  int min_survivors = 1;
  /// Crash times are drawn uniformly in [window_start, window_end).
  sim::Time window_start = 0;
  sim::Time window_end = 1'000'000;
  /// Probability that a given crash is announced (the launcher broadcasts
  /// it); otherwise it is silent and survivors detect it endogenously.
  double announce_probability = 1.0;
  /// Minimum spacing between consecutive crashes. 0 allows same-tick double
  /// crashes; a small positive value staggers them — e.g. inside the
  /// previous crash's re-replication window to hit mid-re-sync orderings.
  /// The window bound dominates: a crash pushed past window_end by the gap
  /// rule clamps back to the last in-window tick (colliding there), so the
  /// plan never schedules outside [window_start, window_end).
  sim::Time min_gap = 0;
};

/// Expand `spec` into a deterministic FaultPlan using `seed`. Crash times
/// are sorted ascending; victims are distinct.
FaultPlan chaos_plan(const ChaosSpec& spec, std::uint64_t seed);

/// One-line human/CSV description of a plan ("r3@350us!, r5@612us~" where
/// `!` = announced, `~` = silent), stable across runs for a given seed.
std::string describe_plan(const FaultPlan& plan);

}  // namespace m3rma::runtime
