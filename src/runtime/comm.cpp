#include "runtime/comm.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "runtime/world.hpp"

namespace m3rma::runtime {

namespace {
// Wire tag layout: [context:23][coll:1][payload:39].
constexpr int kPayloadBits = 39;
constexpr std::int64_t kPayloadMask = (std::int64_t{1} << kPayloadBits) - 1;
constexpr std::int64_t kCollBit = std::int64_t{1} << kPayloadBits;
}  // namespace

Comm::Comm(Rank& rank, std::uint32_t context_id, std::vector<int> members)
    : rank_(&rank), context_id_(context_id), members_(std::move(members)) {
  M3RMA_REQUIRE(!members_.empty(), "communicator needs at least one member");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == rank_->id()) my_index_ = static_cast<int>(i);
  }
  M3RMA_REQUIRE(my_index_ >= 0, "calling rank is not in the communicator");
}

int Comm::to_world(int r) const {
  M3RMA_REQUIRE(r >= 0 && r < size(), "rank out of communicator range");
  return members_[static_cast<std::size_t>(r)];
}

int Comm::from_world(int world_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_rank) return static_cast<int>(i);
  }
  throw Panic("message from a rank outside this communicator");
}

std::int64_t Comm::wire_tag(std::int64_t user_tag) const {
  M3RMA_REQUIRE(user_tag >= 0 && user_tag < kCollBit,
                "user tag out of range");
  return (static_cast<std::int64_t>(context_id_) << (kPayloadBits + 1)) |
         user_tag;
}

std::int64_t Comm::coll_tag(int phase) {
  // coll_seq_ is advanced once per collective by the caller; phase
  // distinguishes message rounds inside one collective.
  const std::int64_t payload =
      ((static_cast<std::int64_t>(coll_seq_) << 8) |
       static_cast<std::int64_t>(phase)) &
      kPayloadMask;
  return (static_cast<std::int64_t>(context_id_) << (kPayloadBits + 1)) |
         kCollBit | payload;
}

// --------------------------------------------------------- point-to-point

void Comm::send(int dst, std::int64_t tag, std::span<const std::byte> data) {
  rank_->p2p().send(rank_->ctx(), to_world(dst), wire_tag(tag), data);
}

Message Comm::recv(int src, std::int64_t tag) {
  const int wsrc = src == kAnySource ? kAnySource : to_world(src);
  const std::int64_t wtag = tag == kAnyTag ? kAnyTag : wire_tag(tag);
  Message m = rank_->p2p().recv(rank_->ctx(), wsrc, wtag);
  m.src = from_world(m.src);
  m.tag &= kPayloadMask;
  return m;
}

// ------------------------------------------------------------ collectives

bool Comm::member_alive(int r) const {
  return rank_->world().alive(to_world(r));
}

bool Comm::all_alive() const {
  for (int m : members_) {
    if (!rank_->world().alive(m)) return false;
  }
  return true;
}

std::optional<Message> Comm::recv_from_live(int r, std::int64_t wtag) {
  if (!member_alive(r)) return std::nullopt;
  try {
    return rank_->p2p().recv(rank_->ctx(), to_world(r), wtag);
  } catch (const RankFailedError&) {
    return std::nullopt;  // r died while we waited
  }
}

void Comm::barrier() {
  ++coll_seq_;
  const int n = size();
  const int me = rank();
  for (int k = 1; k < n; k <<= 1) {
    const int to = (me + k) % n;
    const int from = (me - k % n + n) % n;
    if (member_alive(to)) {
      rank_->p2p().send(rank_->ctx(), to_world(to), coll_tag(0), {});
    }
    (void)recv_from_live(from, coll_tag(0));
  }
}

void Comm::bcast(std::vector<std::byte>& data, int root) {
  ++coll_seq_;
  const int n = size();
  if (n == 1) return;
  const int vr = (rank() - root + n) % n;
  // Binomial tree: receive from the parent, then forward down.
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      const int parent = ((vr - mask) + root) % n;
      // A dead parent means this subtree can never learn the payload; keep
      // the caller's buffer and carry on.
      if (auto m = recv_from_live(parent, coll_tag(1))) {
        data = std::move(m->data);
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child = ((vr + mask) + root) % n;
      if (member_alive(child)) {
        rank_->p2p().send(rank_->ctx(), to_world(child), coll_tag(1), data);
      }
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gather(
    std::span<const std::byte> mine, int root) {
  ++coll_seq_;
  const int n = size();
  std::vector<std::vector<std::byte>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(n));
    out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    std::vector<int> pending;
    for (int i = 0; i < n; ++i) {
      if (i != root) pending.push_back(to_world(i));
    }
    while (!pending.empty()) {
      auto m = rank_->p2p().recv_any_live(rank_->ctx(), coll_tag(2), pending);
      if (!m) break;  // every remaining contributor died; slots stay empty
      std::erase(pending, m->src);
      out[static_cast<std::size_t>(from_world(m->src))] = std::move(m->data);
    }
  } else if (member_alive(root)) {
    rank_->p2p().send(rank_->ctx(), to_world(root), coll_tag(2), mine);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather(
    std::span<const std::byte> mine) {
  auto parts = gather(mine, 0);
  // Serialize [count][len,bytes]... and broadcast.
  std::vector<std::byte> blob;
  if (rank() == 0) {
    for (const auto& part : parts) {
      const std::uint64_t len = part.size();
      const auto* lp = reinterpret_cast<const std::byte*>(&len);
      blob.insert(blob.end(), lp, lp + sizeof(len));
      blob.insert(blob.end(), part.begin(), part.end());
    }
  }
  bcast(blob, 0);
  if (rank() != 0) {
    parts.clear();
    std::size_t off = 0;
    while (off < blob.size()) {
      std::uint64_t len = 0;
      std::memcpy(&len, blob.data() + off, sizeof(len));
      off += sizeof(len);
      parts.emplace_back(blob.begin() + static_cast<std::ptrdiff_t>(off),
                         blob.begin() + static_cast<std::ptrdiff_t>(off + len));
      off += len;
    }
  }
  if (parts.size() != static_cast<std::size_t>(size())) {
    // Only tolerable when the shortfall is explained by failed members.
    M3RMA_ENSURE(!all_alive(), "allgather part count mismatch");
    parts.resize(static_cast<std::size_t>(size()));
  }
  return parts;
}

namespace {
enum class Red { sum, mx, mn };
}

static std::uint64_t reduce_vals(Red op, const std::vector<std::uint64_t>& v) {
  std::uint64_t acc = v[0];
  for (std::size_t i = 1; i < v.size(); ++i) {
    switch (op) {
      case Red::sum:
        acc += v[i];
        break;
      case Red::mx:
        acc = std::max(acc, v[i]);
        break;
      case Red::mn:
        acc = std::min(acc, v[i]);
        break;
    }
  }
  return acc;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  return reduce_vals(Red::sum, allgather_value(v));
}
std::uint64_t Comm::allreduce_max(std::uint64_t v) {
  return reduce_vals(Red::mx, allgather_value(v));
}
std::uint64_t Comm::allreduce_min(std::uint64_t v) {
  return reduce_vals(Red::mn, allgather_value(v));
}

std::uint64_t Comm::reduce_sum(std::uint64_t v, int root) {
  ++coll_seq_;
  const int n = size();
  if (rank() == root) {
    std::uint64_t acc = v;
    std::vector<int> pending;
    for (int i = 0; i < n; ++i) {
      if (i != root) pending.push_back(to_world(i));
    }
    while (!pending.empty()) {
      auto m = rank_->p2p().recv_any_live(rank_->ctx(), coll_tag(3), pending);
      if (!m) break;  // dead members contribute nothing
      std::erase(pending, m->src);
      std::uint64_t x = 0;
      M3RMA_ENSURE(m->data.size() == 8, "reduce payload size");
      std::memcpy(&x, m->data.data(), 8);
      acc += x;
    }
    return acc;
  }
  if (member_alive(root)) {
    rank_->p2p().send(rank_->ctx(), to_world(root), coll_tag(3),
                      std::span(reinterpret_cast<const std::byte*>(&v), 8));
  }
  return 0;
}

std::vector<std::byte> Comm::scatter(
    const std::vector<std::vector<std::byte>>& parts, int root) {
  ++coll_seq_;
  const int n = size();
  if (rank() == root) {
    M3RMA_REQUIRE(parts.size() == static_cast<std::size_t>(n),
                  "scatter needs one part per rank");
    for (int i = 0; i < n; ++i) {
      if (i == root || !member_alive(i)) continue;
      rank_->p2p().send(rank_->ctx(), to_world(i), coll_tag(4),
                        parts[static_cast<std::size_t>(i)]);
    }
    return parts[static_cast<std::size_t>(root)];
  }
  if (auto m = recv_from_live(root, coll_tag(4))) return std::move(m->data);
  return {};  // root died before our part arrived
}

std::vector<std::vector<std::byte>> Comm::alltoall(
    const std::vector<std::vector<std::byte>>& mine) {
  ++coll_seq_;
  const int n = size();
  M3RMA_REQUIRE(mine.size() == static_cast<std::size_t>(n),
                "alltoall needs one part per rank");
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(rank())] =
      mine[static_cast<std::size_t>(rank())];
  // Pairwise exchange in n-1 rounds (XOR-free ring schedule): in round k
  // send to (me+k) and receive from (me-k).
  for (int k = 1; k < n; ++k) {
    const int to = (rank() + k) % n;
    const int from = (rank() - k + n) % n;
    if (member_alive(to)) {
      rank_->p2p().send(rank_->ctx(), to_world(to), coll_tag(5),
                        mine[static_cast<std::size_t>(to)]);
    }
    if (auto m = recv_from_live(from, coll_tag(5))) {
      out[static_cast<std::size_t>(from)] = std::move(m->data);
    }
  }
  return out;
}

std::uint64_t Comm::exscan_sum(std::uint64_t v) {
  const auto vals = allgather_value(v);
  std::uint64_t acc = 0;
  for (int i = 0; i < rank(); ++i) {
    acc += vals[static_cast<std::size_t>(i)];
  }
  return acc;
}

// --------------------------------------------------------- dup and split

std::unique_ptr<Comm> Comm::dup() {
  // Leader picks the context id, everyone learns it via bcast.
  std::vector<std::byte> blob(sizeof(std::uint32_t));
  if (rank() == 0) {
    const std::uint32_t id = rank_->world().alloc_context_id();
    std::memcpy(blob.data(), &id, sizeof(id));
  }
  bcast(blob, 0);
  std::uint32_t id = 0;
  std::memcpy(&id, blob.data(), sizeof(id));
  return std::make_unique<Comm>(*rank_, id, members_);
}

std::unique_ptr<Comm> Comm::split(int color, int key) {
  struct Entry {
    int color;
    int key;
    int world_rank;
  };
  auto entries = allgather_value(Entry{color, key, rank_->id()});
  // Leader allocates one id per distinct non-negative color, broadcasts the
  // (color -> id) table as parallel arrays.
  std::vector<int> colors;
  for (const auto& e : entries) {
    if (e.color >= 0 &&
        std::find(colors.begin(), colors.end(), e.color) == colors.end()) {
      colors.push_back(e.color);
    }
  }
  std::sort(colors.begin(), colors.end());
  std::vector<std::byte> blob(colors.size() * sizeof(std::uint32_t));
  if (rank() == 0) {
    for (std::size_t i = 0; i < colors.size(); ++i) {
      const std::uint32_t id = rank_->world().alloc_context_id();
      std::memcpy(blob.data() + i * sizeof(std::uint32_t), &id, sizeof(id));
    }
  }
  bcast(blob, 0);
  if (color < 0) return nullptr;

  std::vector<Entry> group;
  for (const auto& e : entries) {
    if (e.color == color) group.push_back(e);
  }
  std::stable_sort(group.begin(), group.end(), [](const Entry& a,
                                                  const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.world_rank < b.world_rank;
  });
  std::vector<int> members;
  for (const auto& e : group) members.push_back(e.world_rank);

  const auto idx = static_cast<std::size_t>(
      std::find(colors.begin(), colors.end(), color) - colors.begin());
  std::uint32_t id = 0;
  std::memcpy(&id, blob.data() + idx * sizeof(std::uint32_t), sizeof(id));
  return std::make_unique<Comm>(*rank_, id, std::move(members));
}

}  // namespace m3rma::runtime
