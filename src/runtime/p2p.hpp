// Tag-matched two-sided messaging between ranks.
//
// A minimal MPI-style send/recv layer used by the runtime's collectives and
// by the control protocols of the RMA layers (window creation, post/start
// notifications, lock grants, ...). Eager protocol only: sends complete
// locally at injection; receives match by (source, tag) with wildcard
// support, in arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "fabric/fabric.hpp"
#include "simtime/engine.hpp"

namespace m3rma::runtime {

/// Fabric protocol id claimed by the p2p layer.
inline constexpr int kP2pProtocolId = 20;

inline constexpr int kAnySource = -1;
inline constexpr std::int64_t kAnyTag = -1;

struct Message {
  int src = -1;
  std::int64_t tag = 0;
  std::vector<std::byte> data;
};

/// Per-node endpoint. All calls must be made from processes of this node.
class P2p {
 public:
  explicit P2p(sim::Engine& eng, fabric::Nic& nic);
  ~P2p();
  P2p(const P2p&) = delete;
  P2p& operator=(const P2p&) = delete;

  /// Eager send: charges injection overhead and returns once the message is
  /// buffered on the wire.
  void send(sim::Context& ctx, int dst, std::int64_t tag,
            std::span<const std::byte> data);

  /// Blocking receive matching (src|kAnySource, tag|kAnyTag). Throws
  /// RankFailedError if `src` is (or becomes) a failed node: the message can
  /// never arrive, so waiting would hang the survivor. kAnySource receives
  /// keep waiting while any node is alive.
  Message recv(sim::Context& ctx, int src = kAnySource,
               std::int64_t tag = kAnyTag);

  /// Blocking receive matching `tag` from any of `srcs`, but giving up when
  /// none of them is alive anymore: returns the message, or nullopt once
  /// every listed source is dead (degraded collectives use this to skip
  /// failed members instead of hanging).
  std::optional<Message> recv_any_live(sim::Context& ctx, std::int64_t tag,
                                       const std::vector<int>& srcs);

  /// Non-blocking probe-and-take.
  std::optional<Message> try_recv(int src = kAnySource,
                                  std::int64_t tag = kAnyTag);

  std::size_t unexpected_count() const { return unexpected_.size(); }

 private:
  struct WireHdr {
    std::int64_t tag = 0;
  };
  struct Posted {
    int src;
    std::int64_t tag;
    bool done = false;
    Message msg;
  };

  static bool matches(const Posted& p, int src, std::int64_t tag) {
    return (p.src == kAnySource || p.src == src) &&
           (p.tag == kAnyTag || p.tag == tag);
  }
  void deliver(fabric::Packet&& p);
  bool node_alive(int node) const;
  /// Await `posted.done` or the failure wake-up condition `give_up`; always
  /// unlinks `posted` from posted_ on the way out, including when the wait
  /// throws (KillSignal unwinding a killed rank).
  void await_posted(sim::Context& ctx, Posted& posted,
                    const std::function<bool()>& give_up);

  fabric::Nic* nic_;
  sim::Condition cond_;
  std::deque<Message> unexpected_;
  std::vector<Posted*> posted_;
  int death_listener_ = -1;
};

}  // namespace m3rma::runtime
