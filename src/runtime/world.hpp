// Simulated parallel machine: N ranks, one per node, plus per-node NIC,
// memory domain, Portals endpoint and p2p endpoint.
//
// World wires the substrates together; Rank is the handle a rank's code
// uses inside World::run(). Nodes may be configured heterogeneously
// (endianness, address width, cache coherence) via WorldConfig overrides,
// matching the architectural diversity of paper §III-B.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "memsim/memory_domain.hpp"
#include "portals/portals.hpp"
#include "runtime/p2p.hpp"
#include "simtime/engine.hpp"

namespace m3rma::runtime {

class Comm;
class Rank;

/// One entry of the fault schedule: rank `rank` dies (fail-stop) at virtual
/// time `at`.
struct FaultEvent {
  int rank = -1;
  sim::Time at = 0;
  /// Per-event announce override: -1 inherits FaultPlan::announce, 0 forces
  /// a silent death, 1 forces an announced one. Chaos schedules mix both in
  /// a single plan.
  int announce = -1;
};

/// Deterministic fail-stop fault plan. Replays byte-identically under the
/// seed discipline: the schedule is fixed virtual-time events, detection and
/// drain are deterministic functions of the same event sequence.
struct FaultPlan {
  std::vector<FaultEvent> schedule;
  /// true: survivors learn of a scheduled death the instant it happens (the
  /// job launcher broadcasts it — fabric death listeners fire immediately).
  /// false: the crash is silent and survivors must detect it endogenously
  /// through reliability retry-budget exhaustion.
  bool announce = true;
  /// true: a retry-budget exhaustion declares the unreachable peer failed
  /// (kill + announce), converging every rank's view of the membership,
  /// instead of throwing TransportError across the simulator.
  bool isolate_on_link_failure = true;
};

/// When a replicated window's copies are maintained: eagerly (every write is
/// mirrored to the backup as it happens, PR-6 style) or lazily (origins keep
/// a local dirty-region write log and materialize the backup only at
/// failover). Lazy trades steady-state put overhead for failover stall.
enum class ReplMode : std::uint8_t { eager, lazy };

/// Opt-in primary/backup window replication policy, consumed by
/// core::RmaEngine::attach. Disabled (the default) is byte-identical to a
/// build without the replication machinery: attach sends nothing, handles
/// keep their unreplicated wire size, and no op is mirrored.
struct ReplicationConfig {
  bool enabled = false;
  /// Deterministic backup placement: the backup of rank r is
  /// (r + backup_offset) mod ranks. A window whose computed backup is the
  /// owner itself, already dead, or refuses the replica (endianness
  /// mismatch) is created unreplicated. After a failover the surviving copy
  /// re-replicates to the next rank along the same chain
  /// (owner + k*backup_offset), skipping dead or endian-mismatched ranks,
  /// so redundancy is restored and a second crash keeps the window alive.
  int backup_offset = 1;
  /// Recovery mode: eager mirror stream vs demand-driven (lazy) recovery.
  ReplMode mode = ReplMode::eager;
};

struct WorldConfig {
  int ranks = 8;
  fabric::Capabilities caps{};
  fabric::CostModel costs{};
  /// Memory/endianness/coherence config applied to every node...
  memsim::DomainConfig node{};
  /// ...except nodes listed here (heterogeneous systems, §III-B3).
  std::unordered_map<int, memsim::DomainConfig> node_overrides;
  std::uint64_t seed = 1;
  /// Fail-stop fault injection; empty schedule = no faults, byte-identical
  /// to a world without the fault model.
  FaultPlan faults{};
  /// Physical interconnect topology (src/topo): packets then traverse
  /// dimension-ordered hop chains with per-link contention. nullopt = the
  /// legacy flat crossbar, byte-identical to a world without the topo
  /// subsystem.
  std::optional<topo::TopoConfig> topo{};
  /// Primary/backup window replication (core::RmaEngine). Disabled =
  /// byte-identical to a world without the replication subsystem.
  ReplicationConfig replication{};
};

class World {
 public:
  explicit World(WorldConfig cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  /// Execute `fn` as the body of every rank and run the simulation to
  /// completion. One-shot.
  void run(const std::function<void(Rank&)>& fn);

  int size() const { return cfg_.ranks; }
  const WorldConfig& config() const { return cfg_; }
  sim::Engine& engine() { return eng_; }
  fabric::Fabric& fabric() { return *fabric_; }
  memsim::MemoryDomain& memory(int node);
  portals::Portals& portals(int node);
  P2p& p2p(int node);

  /// Virtual time consumed by the whole run (valid after run()).
  sim::Time duration() const { return eng_.now(); }

  /// Fail-stop kill `rank` now (event or rank context): its process dies at
  /// its current blocking point, its node's links blackhole, and the death
  /// is announced to survivors. Scheduled FaultPlan entries route through
  /// this with the plan's announce flag instead.
  void kill_rank(int rank) { kill_rank(rank, /*announce=*/true); }
  bool alive(int rank) const { return fabric_->alive(rank); }
  const std::vector<int>& failed_ranks() const { return failed_ranks_; }

  /// Fresh communicator context id. Safe to call from rank code: the
  /// simulation is sequential, so this acts like a coordinated counter
  /// (callers still must agree on the value, e.g. leader + bcast).
  std::uint32_t alloc_context_id() { return next_ctx_++; }

 private:
  void kill_rank(int rank, bool announce);

  WorldConfig cfg_;
  sim::Engine eng_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::vector<std::unique_ptr<memsim::MemoryDomain>> mems_;
  std::vector<std::unique_ptr<portals::Portals>> portals_;
  std::vector<std::unique_ptr<P2p>> p2ps_;
  std::vector<int> rank_pids_;   // engine pid of each rank's process
  std::vector<int> failed_ranks_;  // in death order
  std::uint32_t next_ctx_ = 1;  // 0 is reserved for comm_world
  bool ran_ = false;
};

/// A rank's view of the machine, valid only inside World::run's body.
class Rank {
 public:
  Rank(World& w, sim::Context& ctx, int id);
  ~Rank();
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }
  int size() const { return world_->size(); }
  World& world() { return *world_; }
  sim::Context& ctx() { return *ctx_; }
  memsim::MemoryDomain& memory() { return world_->memory(id_); }
  portals::Portals& portals() { return world_->portals(id_); }
  P2p& p2p() { return world_->p2p(id_); }

  /// The world communicator (all ranks, context id 0).
  Comm& comm_world() { return *comm_world_; }

  // ----- arena allocation (RMA-addressable memory) ------------------------

  struct Buffer {
    std::uint64_t addr = 0;   ///< domain address (what RMA peers use)
    std::byte* data = nullptr;  ///< host pointer for local access
    std::uint64_t size = 0;
  };
  Buffer alloc(std::uint64_t bytes, std::uint64_t align = 8);
  /// Typed convenience: buffer holding `count` objects of T, zeroed.
  template <class T>
  Buffer alloc_array(std::uint64_t count) {
    return alloc(count * sizeof(T), alignof(T));
  }
  void free(const Buffer& b);

 private:
  World* world_;
  sim::Context* ctx_;
  int id_;
  std::unique_ptr<Comm> comm_world_;
};

}  // namespace m3rma::runtime
