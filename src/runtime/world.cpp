#include "runtime/world.hpp"

#include <numeric>
#include <string>

#include "common/diagnostics.hpp"
#include "runtime/comm.hpp"

namespace m3rma::runtime {

World::World(WorldConfig cfg) : cfg_(std::move(cfg)), eng_(cfg_.seed) {
  M3RMA_REQUIRE(cfg_.ranks > 0, "world needs at least one rank");
  fabric_ = std::make_unique<fabric::Fabric>(eng_, cfg_.ranks, cfg_.caps,
                                             cfg_.costs);
  if (cfg_.topo.has_value()) fabric_->set_topology(*cfg_.topo);
  if (cfg_.faults.isolate_on_link_failure) {
    // STONITH convergence: a reliability endpoint that exhausted its budget
    // cannot tell a dead peer from a partitioned one; declaring the peer
    // failed makes every rank's membership view agree, so survivors drain
    // their pending ops instead of waiting on messages the quarantined
    // endpoint would silently drop.
    fabric_->set_link_failure_policy([this](const fabric::LinkFailure& lf) {
      kill_rank(lf.peer, /*announce=*/true);
      return true;
    });
  }
  for (int n = 0; n < cfg_.ranks; ++n) {
    auto it = cfg_.node_overrides.find(n);
    const memsim::DomainConfig& dc =
        it != cfg_.node_overrides.end() ? it->second : cfg_.node;
    mems_.push_back(std::make_unique<memsim::MemoryDomain>(dc));
    portals_.push_back(
        std::make_unique<portals::Portals>(fabric_->nic(n), *mems_.back()));
    p2ps_.push_back(std::make_unique<P2p>(eng_, fabric_->nic(n)));
  }
}

World::~World() = default;

memsim::MemoryDomain& World::memory(int node) {
  M3RMA_REQUIRE(node >= 0 && node < size(), "node index out of range");
  return *mems_[static_cast<std::size_t>(node)];
}

portals::Portals& World::portals(int node) {
  M3RMA_REQUIRE(node >= 0 && node < size(), "node index out of range");
  return *portals_[static_cast<std::size_t>(node)];
}

P2p& World::p2p(int node) {
  M3RMA_REQUIRE(node >= 0 && node < size(), "node index out of range");
  return *p2ps_[static_cast<std::size_t>(node)];
}

void World::run(const std::function<void(Rank&)>& fn) {
  M3RMA_REQUIRE(!ran_, "World::run is one-shot; create a new World");
  ran_ = true;
  for (int i = 0; i < cfg_.ranks; ++i) {
    rank_pids_.push_back(eng_.spawn(
        "rank" + std::to_string(i), [this, i, &fn](sim::Context& ctx) {
          Rank r(*this, ctx, i);
          fn(r);
        }));
  }
  for (const FaultEvent& fe : cfg_.faults.schedule) {
    M3RMA_REQUIRE(fe.rank >= 0 && fe.rank < cfg_.ranks,
                  "fault schedule names an out-of-range rank");
    const bool announce =
        fe.announce < 0 ? cfg_.faults.announce : fe.announce != 0;
    eng_.schedule_at(fe.at,
                     [this, fe, announce] { kill_rank(fe.rank, announce); });
  }
  eng_.run();
}

void World::kill_rank(int rank, bool announce) {
  M3RMA_REQUIRE(rank >= 0 && rank < cfg_.ranks, "kill of an out-of-range rank");
  if (fabric_->alive(rank)) {
    failed_ranks_.push_back(rank);
    if (static_cast<std::size_t>(rank) < rank_pids_.size()) {
      eng_.kill(rank_pids_[static_cast<std::size_t>(rank)]);
    }
  }
  // Always forwarded: a silent death recorded earlier may be announced now.
  fabric_->fail_node(rank, announce);
}

// ------------------------------------------------------------------- Rank

Rank::Rank(World& w, sim::Context& ctx, int id)
    : world_(&w), ctx_(&ctx), id_(id) {
  std::vector<int> everyone(static_cast<std::size_t>(w.size()));
  std::iota(everyone.begin(), everyone.end(), 0);
  comm_world_ = std::make_unique<Comm>(*this, /*context_id=*/0,
                                       std::move(everyone));
}

Rank::~Rank() = default;

Rank::Buffer Rank::alloc(std::uint64_t bytes, std::uint64_t align) {
  auto& mem = memory();
  const std::uint64_t addr = mem.alloc(bytes, align);
  return Buffer{addr, mem.raw(addr), bytes};
}

void Rank::free(const Buffer& b) { memory().dealloc(b.addr); }

}  // namespace m3rma::runtime
