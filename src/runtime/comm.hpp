// Communicators: groups of ranks with an isolated tag space, point-to-point
// messaging and the collectives the RMA layers need.
//
// The strawman API (paper §IV) deliberately reuses "existing MPI concepts
// such as communicators for groups of processes"; every strawman call takes
// a Comm. Each rank owns its local Comm object; objects with the same
// context id form one communicator.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "runtime/p2p.hpp"

namespace m3rma::runtime {

class Rank;

class Comm {
 public:
  /// World communicator over all ranks; used by Rank::comm_world().
  Comm(Rank& rank, std::uint32_t context_id, std::vector<int> members);

  /// My rank within this communicator.
  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(members_.size()); }
  std::uint32_t context_id() const { return context_id_; }
  /// Translate a communicator rank to a world rank.
  int to_world(int r) const;
  const std::vector<int>& members() const { return members_; }

  /// Duplicate: same group, fresh context id (collective).
  std::unique_ptr<Comm> dup();
  /// Split by color/key, MPI_Comm_split semantics (collective). Returns the
  /// communicator containing this rank; color < 0 yields nullptr.
  std::unique_ptr<Comm> split(int color, int key);

  // ----- point-to-point (ranks are communicator-relative) -----------------

  void send(int dst, std::int64_t tag, std::span<const std::byte> data);
  Message recv(int src = kAnySource, std::int64_t tag = kAnyTag);

  template <class T>
  void send_value(int dst, std::int64_t tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag,
         std::span(reinterpret_cast<const std::byte*>(&v), sizeof(T)));
  }
  template <class T>
  T recv_value(int src, std::int64_t tag, int* from = nullptr) {
    Message m = recv(src, tag);
    M3RMA_ENSURE(m.data.size() == sizeof(T), "typed recv size mismatch");
    T v;
    std::memcpy(&v, m.data.data(), sizeof(T));
    if (from != nullptr) *from = from_world(m.src);
    return v;
  }

  // ----- collectives --------------------------------------------------------
  //
  // Fault semantics: with failed members, collectives keep their healthy
  // message schedule but skip edges to dead ranks, so they terminate instead
  // of hanging and a rank that entered before a death interoperates with one
  // that entered after. Degraded results are best-effort: gathered/reduced
  // slots of dead ranks are empty/zero, bcast payloads are lost for the
  // subtree behind a dead interior node, and a degraded barrier no longer
  // separates rounds. allgather_value/allreduce/dup/split stay strict and
  // panic on short results — rebuild the communicator after a failure if you
  // need them.

  void barrier();
  /// Broadcast `data` from root; non-roots receive into `data`.
  void bcast(std::vector<std::byte>& data, int root);
  /// Gather per-rank byte strings; result valid at root only.
  std::vector<std::vector<std::byte>> gather(std::span<const std::byte> mine,
                                             int root);
  std::vector<std::vector<std::byte>> allgather(
      std::span<const std::byte> mine);
  std::uint64_t allreduce_sum(std::uint64_t v);
  std::uint64_t allreduce_max(std::uint64_t v);
  std::uint64_t allreduce_min(std::uint64_t v);

  /// Reduce to root (sum); non-roots receive 0.
  std::uint64_t reduce_sum(std::uint64_t v, int root);
  /// Scatter: root supplies one byte string per rank; everyone receives
  /// theirs.
  std::vector<std::byte> scatter(
      const std::vector<std::vector<std::byte>>& parts, int root);
  /// All-to-all personalized exchange: element i of `mine` goes to rank i;
  /// the result's element i came from rank i.
  std::vector<std::vector<std::byte>> alltoall(
      const std::vector<std::vector<std::byte>>& mine);
  /// Exclusive prefix sum: rank r receives sum of values of ranks < r.
  std::uint64_t exscan_sum(std::uint64_t v);

  template <class T>
  std::vector<T> allgather_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allgather(
        std::span(reinterpret_cast<const std::byte*>(&v), sizeof(T)));
    std::vector<T> out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      M3RMA_ENSURE(raw[i].size() == sizeof(T), "allgather size mismatch");
      std::memcpy(&out[i], raw[i].data(), sizeof(T));
    }
    return out;
  }

  Rank& owner() { return *rank_; }

 private:
  int from_world(int world_rank) const;
  std::int64_t wire_tag(std::int64_t user_tag) const;
  std::int64_t coll_tag(int phase);
  bool member_alive(int r) const;
  bool all_alive() const;
  /// recv from `r` that degrades instead of hanging or throwing: returns
  /// nullopt if `r` is already dead or dies while we wait. Collectives keep
  /// their healthy message pattern and use this to skip dead partners, so
  /// ranks that entered a collective before and after a death still exchange
  /// compatible traffic.
  std::optional<Message> recv_from_live(int r, std::int64_t wtag);

  Rank* rank_;
  std::uint32_t context_id_;
  std::vector<int> members_;  // world ranks, sorted by comm rank
  int my_index_ = -1;
  std::uint64_t coll_seq_ = 0;
};

}  // namespace m3rma::runtime
