#include "runtime/p2p.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "trace/recorder.hpp"

namespace m3rma::runtime {

P2p::P2p(sim::Engine& eng, fabric::Nic& nic) : nic_(&nic), cond_(eng) {
  nic_->register_protocol(kP2pProtocolId, [this](fabric::Packet&& p) {
    deliver(std::move(p));
  });
}

void P2p::send(sim::Context& ctx, int dst, std::int64_t tag,
               std::span<const std::byte> data) {
  M3RMA_REQUIRE(tag >= 0, "message tags must be non-negative");
  if (auto* tr = trace::want(ctx.engine().tracer(), trace::Category::p2p)) {
    tr->instant(tr->track(ctx.name()), trace::Category::p2p, "p2p.send",
                "dst=" + std::to_string(dst) + " tag=" + std::to_string(tag) +
                    " bytes=" + std::to_string(data.size()));
    tr->add_counter(trace::Category::p2p, "p2p.sends");
  }
  ctx.delay(nic_->fabric().costs().inject_overhead_ns);
  fabric::Packet p;
  p.protocol = kP2pProtocolId;
  fabric::set_header(p, WireHdr{tag});
  p.payload.assign(data.begin(), data.end());
  nic_->send(dst, std::move(p));
}

Message P2p::recv(sim::Context& ctx, int src, std::int64_t tag) {
  if (auto m = try_recv(src, tag)) return std::move(*m);
  trace::SpanHandle h = 0;
  if (auto* tr = trace::want(ctx.engine().tracer(), trace::Category::p2p)) {
    h = tr->span_begin(tr->track(ctx.name()), trace::Category::p2p,
                       "p2p.recv",
                       "src=" + std::to_string(src) +
                           " tag=" + std::to_string(tag));
  }
  Posted posted{src, tag, false, {}};
  posted_.push_back(&posted);
  ctx.await_until(cond_, [&] { return posted.done; });
  if (h != 0) ctx.engine().tracer()->span_end(h);
  return std::move(posted.msg);
}

std::optional<Message> P2p::try_recv(int src, std::int64_t tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((src == kAnySource || src == it->src) &&
        (tag == kAnyTag || tag == it->tag)) {
      Message m = std::move(*it);
      unexpected_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void P2p::deliver(fabric::Packet&& p) {
  const auto hdr = fabric::get_header<WireHdr>(p);
  Message m{p.src, hdr.tag, std::move(p.payload)};
  // Hand to the first compatible posted receive, else queue as unexpected.
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!(*it)->done && matches(**it, m.src, m.tag)) {
      (*it)->msg = std::move(m);
      (*it)->done = true;
      posted_.erase(it);
      cond_.notify_all();
      return;
    }
  }
  unexpected_.push_back(std::move(m));
}

}  // namespace m3rma::runtime
