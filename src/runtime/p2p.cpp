#include "runtime/p2p.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "trace/recorder.hpp"

namespace m3rma::runtime {

P2p::P2p(sim::Engine& eng, fabric::Nic& nic) : nic_(&nic), cond_(eng) {
  nic_->register_protocol(kP2pProtocolId, [this](fabric::Packet&& p) {
    deliver(std::move(p));
  });
  // Wake blocked receivers when any node dies: a recv whose source just
  // failed must stop waiting and raise RankFailedError instead of hanging.
  death_listener_ =
      nic_->fabric().add_death_listener([this](int) { cond_.notify_all(); });
}

P2p::~P2p() {
  if (death_listener_ != -1) {
    nic_->fabric().remove_death_listener(death_listener_);
  }
}

bool P2p::node_alive(int node) const { return nic_->fabric().alive(node); }

void P2p::await_posted(sim::Context& ctx, Posted& posted,
                       const std::function<bool()>& give_up) {
  posted_.push_back(&posted);
  try {
    ctx.await_until(cond_, [&] { return posted.done || give_up(); });
  } catch (...) {
    // KillSignal (this rank died mid-recv): unlink the stack-allocated
    // posted record before unwinding past it.
    if (!posted.done) std::erase(posted_, &posted);
    throw;
  }
  if (!posted.done) std::erase(posted_, &posted);
}

void P2p::send(sim::Context& ctx, int dst, std::int64_t tag,
               std::span<const std::byte> data) {
  M3RMA_REQUIRE(tag >= 0, "message tags must be non-negative");
  if (auto* tr = trace::want(ctx.engine().tracer(), trace::Category::p2p)) {
    tr->instant(tr->track(ctx.name()), trace::Category::p2p, "p2p.send",
                "dst=" + std::to_string(dst) + " tag=" + std::to_string(tag) +
                    " bytes=" + std::to_string(data.size()));
    tr->add_counter(trace::Category::p2p, "p2p.sends");
  }
  ctx.delay(nic_->fabric().costs().inject_overhead_ns);
  fabric::Packet p;
  p.protocol = kP2pProtocolId;
  fabric::set_header(p, WireHdr{tag});
  p.payload.assign(data.begin(), data.end());
  nic_->send(dst, std::move(p));
}

Message P2p::recv(sim::Context& ctx, int src, std::int64_t tag) {
  if (auto m = try_recv(src, tag)) return std::move(*m);
  if (src != kAnySource && !node_alive(src)) {
    throw RankFailedError("p2p recv from failed rank " + std::to_string(src));
  }
  trace::SpanHandle h = 0;
  if (auto* tr = trace::want(ctx.engine().tracer(), trace::Category::p2p)) {
    h = tr->span_begin(tr->track(ctx.name()), trace::Category::p2p,
                       "p2p.recv",
                       "src=" + std::to_string(src) +
                           " tag=" + std::to_string(tag));
  }
  Posted posted{src, tag, false, {}};
  try {
    await_posted(ctx, posted,
                 [&] { return src != kAnySource && !node_alive(src); });
  } catch (...) {
    if (h != 0) ctx.engine().tracer()->span_end(h);
    throw;
  }
  if (h != 0) ctx.engine().tracer()->span_end(h);
  if (!posted.done) {
    throw RankFailedError("p2p recv from failed rank " + std::to_string(src));
  }
  return std::move(posted.msg);
}

std::optional<Message> P2p::recv_any_live(sim::Context& ctx, std::int64_t tag,
                                          const std::vector<int>& srcs) {
  for (int s : srcs) {
    if (auto m = try_recv(s, tag)) return m;
  }
  auto any_alive = [&] {
    return std::any_of(srcs.begin(), srcs.end(),
                       [&](int s) { return node_alive(s); });
  };
  if (!any_alive()) return std::nullopt;
  trace::SpanHandle h = 0;
  if (auto* tr = trace::want(ctx.engine().tracer(), trace::Category::p2p)) {
    h = tr->span_begin(tr->track(ctx.name()), trace::Category::p2p,
                       "p2p.recv",
                       "src=-1 tag=" + std::to_string(tag));
  }
  // Tags are unique per collective instance, so an any-source match can only
  // pick up a message from one of `srcs`.
  Posted posted{kAnySource, tag, false, {}};
  try {
    await_posted(ctx, posted, [&] { return !any_alive(); });
  } catch (...) {
    if (h != 0) ctx.engine().tracer()->span_end(h);
    throw;
  }
  if (h != 0) ctx.engine().tracer()->span_end(h);
  if (!posted.done) return std::nullopt;
  return std::move(posted.msg);
}

std::optional<Message> P2p::try_recv(int src, std::int64_t tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((src == kAnySource || src == it->src) &&
        (tag == kAnyTag || tag == it->tag)) {
      Message m = std::move(*it);
      unexpected_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void P2p::deliver(fabric::Packet&& p) {
  const auto hdr = fabric::get_header<WireHdr>(p);
  Message m{p.src, hdr.tag, std::move(p.payload)};
  // Hand to the first compatible posted receive, else queue as unexpected.
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!(*it)->done && matches(**it, m.src, m.tag)) {
      (*it)->msg = std::move(m);
      (*it)->done = true;
      posted_.erase(it);
      cond_.notify_all();
      return;
    }
  }
  unexpected_.push_back(std::move(m));
}

}  // namespace m3rma::runtime
