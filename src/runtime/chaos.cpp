#include "runtime/chaos.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "common/rng.hpp"

namespace m3rma::runtime {

FaultPlan chaos_plan(const ChaosSpec& spec, std::uint64_t seed) {
  M3RMA_REQUIRE(!spec.victims.empty(), "chaos spec needs victim ranks");
  M3RMA_REQUIRE(spec.window_end > spec.window_start,
                "chaos spec needs a non-empty time window");
  // Domain-separated stream: schedules drawn for different seeds never
  // correlate, and the plan is independent of any other consumer of `seed`.
  SplitMix64 rng(mix64(seed ^ 0x63686165f5a5a5a5ULL));

  const int max_crashes = static_cast<int>(spec.victims.size()) -
                          std::max(0, spec.min_survivors);
  const int crashes = std::max(0, std::min(spec.crashes, max_crashes));

  // Victims without replacement: partial Fisher-Yates over a copy.
  std::vector<int> pool = spec.victims;
  FaultPlan plan;
  plan.announce = true;  // per-event overrides below carry the real mix
  std::vector<sim::Time> times;
  times.reserve(static_cast<std::size_t>(crashes));
  for (int i = 0; i < crashes; ++i) {
    const auto pick =
        static_cast<std::size_t>(rng.next_below(pool.size() - static_cast<std::size_t>(i)));
    std::swap(pool[pick], pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
    times.push_back(spec.window_start +
                    static_cast<sim::Time>(rng.next_below(
                        static_cast<std::uint64_t>(spec.window_end -
                                                   spec.window_start))));
  }
  std::sort(times.begin(), times.end());
  // Enforce the minimum gap by pushing later crashes forward; a gap of 0
  // keeps exact collisions (same-tick double crash) intact. The documented
  // [window_start, window_end) bound dominates min_gap when the two
  // conflict: pushed times clamp back to the last in-window tick (crashes
  // then collide there rather than spill past a bench's measured window).
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] < times[i - 1] + spec.min_gap) {
      times[i] = times[i - 1] + spec.min_gap;
    }
    if (times[i] >= spec.window_end) times[i] = spec.window_end - 1;
  }
  for (int i = 0; i < crashes; ++i) {
    FaultEvent fe;
    fe.rank = pool[pool.size() - 1 - static_cast<std::size_t>(i)];
    fe.at = times[static_cast<std::size_t>(i)];
    fe.announce = rng.next_bool(spec.announce_probability) ? 1 : 0;
    plan.schedule.push_back(fe);
  }
  // Deliver in time order (kill_rank replays deterministically either way,
  // but an ordered schedule reads better in logs and plan descriptions).
  std::sort(plan.schedule.begin(), plan.schedule.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at != b.at ? a.at < b.at : a.rank < b.rank;
            });
  return plan;
}

std::string describe_plan(const FaultPlan& plan) {
  std::string out;
  for (const FaultEvent& fe : plan.schedule) {
    if (!out.empty()) out += ", ";
    out += "r" + std::to_string(fe.rank) + "@" +
           std::to_string(fe.at / 1000) + "us" +
           ((fe.announce < 0 ? plan.announce : fe.announce != 0) ? "!" : "~");
  }
  return out.empty() ? "none" : out;
}

}  // namespace m3rma::runtime
