// SHMEM-like library (paper §II: "Library-based RMA approaches, such as
// SHMEM and Global Arrays, have been used by a number of important
// applications") built on the strawman engine — demonstrating the paper's
// thesis that MPI-3 RMA can serve as the implementation layer for such
// libraries.
//
// Semantics follow Cray SHMEM:
//   * a SYMMETRIC heap: collective shmalloc returns the same offset on
//     every PE, so remote addresses need no translation;
//   * put returns when the source is reusable (delivery may be pending);
//   * shmem_fence orders puts per PE; shmem_quiet completes all puts
//     remotely;
//   * single-element p/g, atomics, and wait_until for flag signaling.
//
// Mapping onto strawman attributes: put -> blocking (local completion);
// fence -> order(pe); quiet -> complete(ALL_RANKS); atomics -> RMW calls.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/rma_engine.hpp"
#include "runtime/comm.hpp"
#include "runtime/world.hpp"

namespace m3rma::shmem {

class Shmem {
 public:
  /// shmem_init: collective; carves a symmetric heap of `heap_bytes` on
  /// every PE.
  Shmem(runtime::Rank& rank, runtime::Comm& comm,
        std::uint64_t heap_bytes = std::uint64_t{1} << 20);

  int my_pe() const { return comm_->rank(); }
  int n_pes() const { return comm_->size(); }

  // ----- symmetric heap ----------------------------------------------------

  /// Collective: every PE must call with the same size, in the same order
  /// (standard SHMEM discipline). Returns the symmetric offset.
  std::uint64_t shmalloc(std::uint64_t bytes, std::uint64_t align = 8);
  /// Local domain address of a symmetric offset (for local loads/stores).
  std::uint64_t addr(std::uint64_t sym) const;
  /// Host pointer to local symmetric memory.
  std::byte* ptr(std::uint64_t sym);

  // ----- RMA ----------------------------------------------------------------

  /// shmem_putmem: returns when the source buffer is reusable.
  void put_mem(std::uint64_t sym_dst, const void* src, std::uint64_t bytes,
               int pe);
  /// shmem_getmem: returns with the data.
  void get_mem(void* dst, std::uint64_t sym_src, std::uint64_t bytes,
               int pe);

  template <class T>
  void p(std::uint64_t sym, T value, int pe) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_mem(sym, &value, sizeof(T), pe);
  }
  template <class T>
  T g(std::uint64_t sym, int pe) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    get_mem(&v, sym, sizeof(T), pe);
    return v;
  }

  // ----- ordering and completion ---------------------------------------------

  /// shmem_fence: puts issued before the fence are delivered before puts
  /// issued after it, per PE.
  void fence();
  /// shmem_quiet: all previous puts are remotely complete on return.
  void quiet();
  /// shmem_barrier_all: quiet + barrier.
  void barrier_all();

  // ----- atomics ---------------------------------------------------------------

  std::uint64_t atomic_fetch_add(std::uint64_t sym, std::uint64_t v, int pe);
  std::uint64_t atomic_compare_swap(std::uint64_t sym, std::uint64_t compare,
                                    std::uint64_t desired, int pe);
  std::uint64_t atomic_swap(std::uint64_t sym, std::uint64_t v, int pe);

  // ----- point synchronization ---------------------------------------------------

  /// shmem_wait_until(ptr, SHMEM_CMP_GE, value) on local symmetric memory:
  /// polls (driving progress) until *sym >= value.
  void wait_until_ge(std::uint64_t sym, std::uint64_t value,
                     sim::Time poll_interval = 1000);

  core::RmaEngine& engine() { return *eng_; }

 private:
  const core::TargetMem& mem_of(int pe) const;

  runtime::Rank* rank_;
  runtime::Comm* comm_;
  std::unique_ptr<core::RmaEngine> eng_;
  runtime::Rank::Buffer heap_;
  std::vector<core::TargetMem> mems_;  // per PE
  std::uint64_t heap_used_ = 0;
  std::uint64_t scratch_sym_ = 0;  // staging slot for put_mem/get_mem
  std::uint64_t scratch_len_ = 0;
};

}  // namespace m3rma::shmem
