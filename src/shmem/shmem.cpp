#include "shmem/shmem.hpp"

#include "common/diagnostics.hpp"

namespace m3rma::shmem {

using core::Attrs;
using core::RmaAttr;

Shmem::Shmem(runtime::Rank& rank, runtime::Comm& comm,
             std::uint64_t heap_bytes)
    : rank_(&rank), comm_(&comm) {
  core::EngineConfig cfg;
  cfg.serializer = core::SerializerKind::comm_thread;
  cfg.api_label = "shmem";  // Table S6/S14 attribution axis
  eng_ = std::make_unique<core::RmaEngine>(rank, comm, cfg);
  heap_ = rank.alloc(heap_bytes, 64);
  mems_ = eng_->exchange_all(eng_->attach(heap_));
  // Reserve a staging slot for the copy in/out of user buffers.
  scratch_len_ = 16 * 1024;
  scratch_sym_ = heap_used_;
  heap_used_ += scratch_len_;
  comm.barrier();
}

std::uint64_t Shmem::shmalloc(std::uint64_t bytes, std::uint64_t align) {
  M3RMA_REQUIRE(bytes > 0, "shmalloc of zero bytes");
  M3RMA_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
  const std::uint64_t sym = (heap_used_ + align - 1) & ~(align - 1);
  M3RMA_REQUIRE(sym + bytes <= heap_.size, "symmetric heap exhausted");
  heap_used_ = sym + bytes;
  // The symmetry contract (same calls everywhere) is the caller's job, as
  // in real SHMEM; a barrier catches gross divergence in debug runs.
  return sym;
}

std::uint64_t Shmem::addr(std::uint64_t sym) const {
  M3RMA_REQUIRE(sym < heap_.size, "symmetric offset out of heap");
  return heap_.addr + sym;
}

std::byte* Shmem::ptr(std::uint64_t sym) {
  return rank_->memory().raw(addr(sym));
}

const core::TargetMem& Shmem::mem_of(int pe) const {
  M3RMA_REQUIRE(pe >= 0 && pe < comm_->size(), "PE out of range");
  return mems_[static_cast<std::size_t>(pe)];
}

void Shmem::put_mem(std::uint64_t sym_dst, const void* src,
                    std::uint64_t bytes, int pe) {
  M3RMA_REQUIRE(bytes <= scratch_len_, "put_mem larger than staging slot");
  M3RMA_REQUIRE(sym_dst + bytes <= heap_.size, "put beyond symmetric heap");
  // Stage the user buffer into registered memory; the engine copies the
  // payload at injection, so the slot is immediately reusable.
  std::memcpy(ptr(scratch_sym_), src, bytes);
  eng_->put_bytes(addr(scratch_sym_), mem_of(pe), sym_dst, bytes, pe,
                  Attrs(RmaAttr::blocking));
}

void Shmem::get_mem(void* dst, std::uint64_t sym_src, std::uint64_t bytes,
                    int pe) {
  M3RMA_REQUIRE(bytes <= scratch_len_, "get_mem larger than staging slot");
  M3RMA_REQUIRE(sym_src + bytes <= heap_.size, "get beyond symmetric heap");
  eng_->get_bytes(addr(scratch_sym_), mem_of(pe), sym_src, bytes, pe,
                  Attrs(RmaAttr::blocking));
  std::memcpy(dst, ptr(scratch_sym_), bytes);
}

void Shmem::fence() { eng_->order(core::kAllRanks); }

void Shmem::quiet() { eng_->complete(core::kAllRanks); }

void Shmem::barrier_all() {
  quiet();
  comm_->barrier();
}

std::uint64_t Shmem::atomic_fetch_add(std::uint64_t sym, std::uint64_t v,
                                      int pe) {
  return eng_->fetch_add(mem_of(pe), sym, v, pe);
}

std::uint64_t Shmem::atomic_compare_swap(std::uint64_t sym,
                                         std::uint64_t compare,
                                         std::uint64_t desired, int pe) {
  return eng_->compare_swap(mem_of(pe), sym, compare, desired, pe);
}

std::uint64_t Shmem::atomic_swap(std::uint64_t sym, std::uint64_t v,
                                 int pe) {
  return eng_->swap_val(mem_of(pe), sym, v, pe);
}

void Shmem::wait_until_ge(std::uint64_t sym, std::uint64_t value,
                          sim::Time poll_interval) {
  // A poll loop advances virtual time forever, so a never-satisfied wait
  // would livelock rather than trip deadlock detection; bound it.
  const sim::Time deadline = rank_->ctx().now() + 10'000'000'000ULL;
  while (true) {
    M3RMA_ENSURE(rank_->ctx().now() < deadline,
                 "shmem wait_until stuck for 10 virtual seconds");
    std::uint64_t cur = 0;
    std::vector<std::byte> buf(8);
    rank_->memory().cpu_read_uncached(addr(sym), buf);
    std::memcpy(&cur, buf.data(), 8);
    if (cur >= value) return;
    eng_->progress();
    rank_->ctx().delay(poll_interval);
  }
}

}  // namespace m3rma::shmem
