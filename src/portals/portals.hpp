// Portals-like RMA transport (cf. Brightwell et al., "Portals 3.0").
//
// This is the layer the paper's prototype was written against on the Cray
// XT5: one-sided put/get/atomic with
//   * match entries (ME) exposing target memory on portal table indexes,
//   * memory descriptors (MD) describing initiator buffers,
//   * event queues (EQ) through which both local completion (SEND) and
//     remote completion (ACK, via the network's completion events) are
//     observed — "the Portals library on the Cray XT allows the user to
//     check for remote completion of a message via an Event Queue
//     mechanism" (§V-A).
//
// Whether ACK events exist at all depends on
// fabric::Capabilities::remote_completion_events; native atomic execution
// depends on Capabilities::native_atomics (upper layers must check
// supports_atomics() and fall back to a serializer otherwise, as on the
// Catamount/Portals systems described in §III-B1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "memsim/memory_domain.hpp"
#include "portals/atomics.hpp"
#include "simtime/channel.hpp"
#include "simtime/engine.hpp"

namespace m3rma::portals {

/// Fabric protocol id claimed by the portals transport.
inline constexpr int kProtocolId = 10;

enum class EventType : std::uint8_t {
  send,          ///< initiator: message injected, local buffer reusable
  ack,           ///< initiator: remote delivery confirmed
  put,           ///< target: a put landed in an ME
  get,           ///< target: a get read from an ME
  reply,         ///< initiator: get/fetch-atomic data arrived
  atomic,        ///< target: an atomic was applied to an ME
  dropped,       ///< target: message arrived with no matching ME
  notify,        ///< target: a notified op landed; `tag` holds the user tag
};

struct Event {
  EventType type = EventType::send;
  int initiator = -1;            ///< node that issued the operation
  std::uint64_t match_bits = 0;
  std::uint64_t remote_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t user_ptr = 0;    ///< initiator-supplied cookie
  std::uint32_t tag = 0;         ///< user notification tag (notify events)
};

/// FIFO of events, waitable by simulated processes.
class EventQueue {
 public:
  explicit EventQueue(sim::Engine& e) : cond_(e) {}

  void post(const Event& ev) {
    q_.push_back(ev);
    cond_.notify_all();
  }
  std::optional<Event> poll() {
    if (q_.empty()) return std::nullopt;
    Event ev = q_.front();
    q_.pop_front();
    return ev;
  }
  /// Block until an event is available, then dequeue it.
  Event wait(sim::Context& ctx) {
    ctx.await_until(cond_, [this] { return !q_.empty(); });
    Event ev = q_.front();
    q_.pop_front();
    return ev;
  }
  std::size_t pending() const { return q_.size(); }
  /// Notified whenever an event is posted. Upper layers may use it as a
  /// general progress condition (and notify it for their own events).
  sim::Condition& condition() { return cond_; }

 private:
  std::deque<Event> q_;
  sim::Condition cond_;
};

using MdHandle = std::uint32_t;
using MeHandle = std::uint32_t;

/// Per-node portals interface. Construct one per node over its NIC and
/// memory domain; all methods must be called from that node's simulated
/// processes (or, for registration, before the simulation starts).
class Portals {
 public:
  Portals(fabric::Nic& nic, memsim::MemoryDomain& mem);

  /// Initiator-side buffer registration.
  MdHandle md_bind(std::uint64_t base, std::uint64_t length, EventQueue* eq);
  void md_release(MdHandle md);

  /// Target-side exposure: messages to `pt_index` whose match bits satisfy
  /// (bits ^ match) & ~ignore == 0 land in [base, base+length).
  MeHandle me_append(int pt_index, std::uint64_t match, std::uint64_t ignore,
                     std::uint64_t base, std::uint64_t length,
                     EventQueue* eq);
  void me_unlink(MeHandle me);

  /// One-sided write. Charges injection overhead to `ctx`, posts SEND to
  /// the MD's EQ at injection, and (if want_ack and the network supports
  /// completion events) posts ACK on remote delivery.
  /// With `notify` set the wire header carries a notification bit + user
  /// tag `ntag`: after the data is applied at the target, an
  /// EventType::notify event is posted to the EQ registered (via
  /// set_notify_eq) for the matched ME's match bits, and the ack (if any)
  /// echoes the tag plus the target-side fire time in its remote_off.
  void put(sim::Context& ctx, MdHandle md, std::uint64_t local_off,
           std::uint64_t length, int target, int pt_index,
           std::uint64_t match, std::uint64_t remote_off,
           std::uint64_t user_ptr, bool want_ack, bool notify = false,
           std::uint32_t ntag = 0);

  /// One-sided read; REPLY is posted to the MD's EQ when data arrives.
  /// length 0 is a valid flush probe (full round trip, no data).
  /// A notified get fires the target-side notify event after the read.
  void get(sim::Context& ctx, MdHandle md, std::uint64_t local_off,
           std::uint64_t length, int target, int pt_index,
           std::uint64_t match, std::uint64_t remote_off,
           std::uint64_t user_ptr, bool notify = false,
           std::uint32_t ntag = 0);

  /// NIC-executed accumulate (requires supports_atomics()). Operand bytes
  /// are read from the MD like a put.
  void atomic(sim::Context& ctx, AccOp op, NumType nt, MdHandle md,
              std::uint64_t local_off, std::uint64_t length, int target,
              int pt_index, std::uint64_t match, std::uint64_t remote_off,
              std::uint64_t user_ptr, bool want_ack, bool notify = false,
              std::uint32_t ntag = 0);

  /// NIC-executed fetched RMW on one element (requires supports_atomics()).
  /// The payload ([operand] or [compare][desired]) is read from
  /// md/local_off; the previous value is written to md/fetch_off and
  /// announced by a REPLY event.
  void fetch_atomic(sim::Context& ctx, RmwOp op, NumType nt, MdHandle md,
                    std::uint64_t local_off, std::uint64_t fetch_off,
                    int target, int pt_index, std::uint64_t match,
                    std::uint64_t remote_off, std::uint64_t user_ptr);

  bool supports_atomics() const;
  bool supports_ack_events() const;

  /// Drop notifications: a message that arrives with no matching ME (or a
  /// reply/ack for an already-released MD) posts EventType::dropped here,
  /// mirroring Portals' PTL_EVENT_*_DROPPED. Optional; the
  /// dropped_messages() counter ticks regardless.
  void set_drop_eq(EventQueue* eq) { drop_eq_ = eq; }

  /// Register the sink that receives EventType::notify events for notified
  /// ops landing in MEs with these match bits (called in delivery context,
  /// right after the data is applied / read). A notified op arriving with
  /// no registered sink posts EventType::dropped instead (the producer
  /// asked for a wakeup nobody is listening for).
  using NotifySink = std::function<void(const Event&)>;
  void set_notify_sink(std::uint64_t match, NotifySink sink) {
    notify_sinks_[match] = std::move(sink);
  }
  void clear_notify_sink(std::uint64_t match) { notify_sinks_.erase(match); }

  int node() const { return nic_->node(); }
  fabric::Fabric& fabric() { return nic_->fabric(); }
  memsim::MemoryDomain& memory() { return *mem_; }

  std::uint64_t dropped_messages() const { return dropped_; }

  /// Count of data-carrying ops (put/atomic) from `src` matched into MEs of
  /// `pt_index`. Mirrors Portals counting events: readable locally at the
  /// target with no CPU involvement, which is what makes software
  /// completion-count queries possible on ack-less networks.
  std::uint64_t received_data_ops(int pt_index, int src) const;

 private:
  struct Md {
    std::uint64_t base = 0;
    std::uint64_t length = 0;
    EventQueue* eq = nullptr;
  };
  struct Me {
    int pt_index = 0;
    std::uint64_t match = 0;
    std::uint64_t ignore = 0;
    std::uint64_t base = 0;
    std::uint64_t length = 0;
    EventQueue* eq = nullptr;
  };

  struct WireHdr;

  void deliver(fabric::Packet&& p);
  void note_dropped(int initiator, std::uint64_t match,
                    std::uint64_t remote_off, std::uint64_t length,
                    std::uint64_t user_ptr);
  Me* match_me(int pt_index, std::uint64_t bits, std::uint64_t offset,
               std::uint64_t length);
  /// Hand the target-side notify event for a landed notified op to the
  /// registered sink (or post a dropped event when no sink is registered
  /// for the match bits).
  void fire_notify(int initiator, std::uint64_t match,
                   std::uint64_t remote_off, std::uint64_t length,
                   std::uint64_t user_ptr, std::uint32_t ntag);
  Md& md_ref(MdHandle md);
  /// Pay the NIC injection overhead; when `op` is a tracked attribution tag
  /// the interval is reported as the op's inject segment.
  void charge_inject(sim::Context& ctx, std::uint64_t op = 0);
  void post_send_event(const Event& ev, EventQueue* eq, std::uint64_t bytes);
  /// Tracing: record an EQ post of `type` on this node's rank track.
  void trace_eq(const char* type, const Event& ev);
  /// `op` is the attribution tag stamped on the packet (0 = untagged).
  void send_to(int target, const WireHdr& hdr, std::vector<std::byte> payload,
               std::uint64_t op = 0);

  fabric::Nic* nic_;
  memsim::MemoryDomain* mem_;
  std::unordered_map<MdHandle, Md> mds_;
  std::unordered_map<MeHandle, Me> mes_;
  std::vector<MeHandle> me_order_;  // match priority = append order
  MdHandle next_md_ = 1;
  MeHandle next_me_ = 1;
  EventQueue* drop_eq_ = nullptr;
  // match bits -> consumer notification sink (see set_notify_sink).
  std::unordered_map<std::uint64_t, NotifySink> notify_sinks_;
  std::uint64_t dropped_ = 0;
  // (pt_index, src) -> matched data ops.
  std::unordered_map<std::uint64_t, std::uint64_t> matched_counts_;
};

}  // namespace m3rma::portals
