// Element-wise atomic operations executed at the target.
//
// Covers both accumulate-style reductions (MPI_Accumulate / the strawman's
// accumulate optype) and the conditional/unconditional read-modify-write
// operations §V says the Forum was considering (fetch-and-add,
// compare-and-swap, swap).
//
// Operands arrive in the *target node's* byte order; on targets whose
// simulated endianness differs from the simulation host, values are swapped
// to host order for arithmetic and back for storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/byteorder.hpp"

namespace m3rma::portals {

/// Reduction applied per element by accumulate.
enum class AccOp : std::uint8_t {
  replace,  // remote write (put semantics through the atomic path)
  sum,
  prod,
  min,
  max,
  band,
  bor,
  bxor,
};

/// Read-modify-write with a fetched result.
enum class RmwOp : std::uint8_t {
  fetch_add,
  swap,          // unconditional RMW
  compare_swap,  // conditional RMW: payload = [compare][desired]
};

/// Leaf numeric type of atomic elements.
enum class NumType : std::uint8_t {
  i8,
  i16,
  i32,
  i64,
  u64,
  f32,
  f64,
};

std::size_t num_size(NumType t);
bool acc_op_valid_for(AccOp op, NumType t);

/// Apply `op` element-wise: target[i] = op(target[i], operand[i]).
/// `bytes` must be a multiple of num_size(t). `target_endian` is the byte
/// order of both the target memory and the operand buffer.
void apply_acc(AccOp op, NumType t, std::byte* target,
               const std::byte* operand, std::size_t bytes,
               Endian target_endian);

/// Apply a fetched RMW to a single element at `target`; returns the
/// previous value (in target byte order). `payload` holds one element for
/// fetch_add/swap and two ([compare][desired]) for compare_swap.
std::vector<std::byte> apply_rmw(RmwOp op, NumType t, std::byte* target,
                                 std::span<const std::byte> payload,
                                 Endian target_endian);

}  // namespace m3rma::portals
