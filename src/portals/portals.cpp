#include "portals/portals.hpp"

#include <cstring>
#include <utility>

#include "trace/attribution.hpp"
#include "trace/recorder.hpp"

namespace m3rma::portals {

struct Portals::WireHdr {
  enum class Op : std::uint8_t {
    put,
    get_req,
    reply,
    atomic,
    fetch_atomic,
    ack,
  };

  Op op = Op::put;
  AccOp acc_op = AccOp::replace;
  RmwOp rmw_op = RmwOp::fetch_add;
  NumType num_type = NumType::i64;
  std::uint8_t want_ack = 0;
  // Notified access rides in what used to be padding so the header (and
  // therefore every packet's wire_size and timing) stays byte-identical
  // for non-notified traffic. On acks/replies for notified ops, remote_off
  // is recycled to echo the target-side fire time back to the initiator.
  std::uint8_t notify = 0;
  std::int32_t pt_index = 0;
  std::uint64_t match = 0;
  std::uint64_t remote_off = 0;
  std::uint64_t length = 0;
  std::uint64_t user_ptr = 0;
  std::uint32_t md = 0;
  std::uint32_t ntag = 0;
  std::uint64_t local_off = 0;
};

Portals::Portals(fabric::Nic& nic, memsim::MemoryDomain& mem)
    : nic_(&nic), mem_(&mem) {
  static_assert(sizeof(WireHdr) == 64,
                "notify fields must live in existing padding: growing the "
                "header changes every packet's wire size and timing");
  nic_->register_protocol(kProtocolId,
                          [this](fabric::Packet&& p) { deliver(std::move(p)); });
}

bool Portals::supports_atomics() const {
  return nic_->fabric().caps().native_atomics;
}

bool Portals::supports_ack_events() const {
  return nic_->fabric().caps().remote_completion_events;
}

// ------------------------------------------------------------ registration

MdHandle Portals::md_bind(std::uint64_t base, std::uint64_t length,
                          EventQueue* eq) {
  M3RMA_REQUIRE(length == 0 || mem_->contains(base, length),
                "md_bind range outside the memory domain");
  const MdHandle h = next_md_++;
  mds_.emplace(h, Md{base, length, eq});
  return h;
}

void Portals::md_release(MdHandle md) {
  M3RMA_REQUIRE(mds_.erase(md) == 1, "md_release of unknown handle");
}

MeHandle Portals::me_append(int pt_index, std::uint64_t match,
                            std::uint64_t ignore, std::uint64_t base,
                            std::uint64_t length, EventQueue* eq) {
  M3RMA_REQUIRE(length == 0 || mem_->contains(base, length),
                "me_append range outside the memory domain");
  const MeHandle h = next_me_++;
  mes_.emplace(h, Me{pt_index, match, ignore, base, length, eq});
  me_order_.push_back(h);
  return h;
}

void Portals::me_unlink(MeHandle me) {
  M3RMA_REQUIRE(mes_.erase(me) == 1, "me_unlink of unknown handle");
  std::erase(me_order_, me);
}

Portals::Md& Portals::md_ref(MdHandle md) {
  auto it = mds_.find(md);
  M3RMA_REQUIRE(it != mds_.end(), "operation on unknown MD handle");
  return it->second;
}

void Portals::note_dropped(int initiator, std::uint64_t match,
                           std::uint64_t remote_off, std::uint64_t length,
                           std::uint64_t user_ptr) {
  ++dropped_;
  if (drop_eq_ != nullptr) {
    const Event ev{EventType::dropped, initiator, match, remote_off, length,
                   user_ptr};
    trace_eq("dropped", ev);
    drop_eq_->post(ev);
  }
}

void Portals::fire_notify(int initiator, std::uint64_t match,
                          std::uint64_t remote_off, std::uint64_t length,
                          std::uint64_t user_ptr, std::uint32_t ntag) {
  auto it = notify_sinks_.find(match);
  if (it == notify_sinks_.end() || !it->second) {
    note_dropped(initiator, match, remote_off, length, user_ptr);
    return;
  }
  const Event ev{EventType::notify, initiator, match,    remote_off,
                 length,            user_ptr,  ntag};
  trace_eq("notify", ev);
  it->second(ev);
}

std::uint64_t Portals::received_data_ops(int pt_index, int src) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pt_index))
       << 32) |
      static_cast<std::uint32_t>(src);
  auto it = matched_counts_.find(key);
  return it == matched_counts_.end() ? 0 : it->second;
}

Portals::Me* Portals::match_me(int pt_index, std::uint64_t bits,
                               std::uint64_t offset, std::uint64_t length) {
  for (MeHandle h : me_order_) {
    auto it = mes_.find(h);
    if (it == mes_.end()) continue;
    Me& me = it->second;
    if (me.pt_index != pt_index) continue;
    if (((bits ^ me.match) & ~me.ignore) != 0) continue;
    if (offset + length > me.length) return nullptr;  // matched but truncated
    return &me;
  }
  return nullptr;
}

void Portals::trace_eq(const char* type, const Event& ev) {
  auto* tr = trace::want(nic_->fabric().engine().tracer(),
                         trace::Category::portals);
  if (tr == nullptr) return;
  tr->instant(tr->track("rank" + std::to_string(node())),
              trace::Category::portals, std::string("eq:") + type,
              "from=" + std::to_string(ev.initiator) +
                  " len=" + std::to_string(ev.length));
  tr->add_counter(trace::Category::portals,
                  std::string("portals.eq.") + type);
}

void Portals::charge_inject(sim::Context& ctx, std::uint64_t op) {
  const sim::Time t0 = ctx.now();
  ctx.delay(nic_->fabric().costs().inject_overhead_ns);
  if (auto* tl = trace::timeline(nic_->fabric().engine().tracer());
      tl != nullptr && tl->tracks(op)) {
    tl->add(op, trace::Segment::inject, t0, ctx.now());
  }
}

void Portals::post_send_event(const Event& ev, EventQueue* eq,
                              std::uint64_t bytes) {
  // Local (SEND) completion models the DMA out of the source buffer: it
  // arrives local_completion_ns plus serialization time after injection.
  const auto& costs = nic_->fabric().costs();
  const auto serial = static_cast<sim::Time>(
      static_cast<double>(bytes) / costs.bytes_per_ns);
  nic_->fabric().engine().schedule_in(costs.local_completion_ns + serial,
                                      [this, eq, ev] {
                                        trace_eq("send", ev);
                                        eq->post(ev);
                                      });
}

void Portals::send_to(int target, const WireHdr& hdr,
                      std::vector<std::byte> payload, std::uint64_t op) {
  fabric::Packet p;
  p.protocol = kProtocolId;
  fabric::set_header(p, hdr);
  p.payload = std::move(payload);
  p.op = op;
  nic_->send(target, std::move(p));
}

// ----------------------------------------------------------- initiator ops

void Portals::put(sim::Context& ctx, MdHandle md, std::uint64_t local_off,
                  std::uint64_t length, int target, int pt_index,
                  std::uint64_t match, std::uint64_t remote_off,
                  std::uint64_t user_ptr, bool want_ack, bool notify,
                  std::uint32_t ntag) {
  Md& m = md_ref(md);
  M3RMA_REQUIRE(local_off + length <= m.length, "put exceeds MD bounds");
  // Attribution: user_ptr is the issuing layer's request id, so (node,
  // user_ptr) is the op's globally unique tag; untracked ids drop out at
  // the timeline.
  const std::uint64_t tag = trace::op_tag(node(), user_ptr);
  charge_inject(ctx, tag);
  std::vector<std::byte> data(length);
  if (length > 0) mem_->nic_read(m.base + local_off, data);

  WireHdr hdr;
  hdr.op = WireHdr::Op::put;
  hdr.want_ack = want_ack ? 1 : 0;
  hdr.notify = notify ? 1 : 0;
  hdr.ntag = ntag;
  hdr.pt_index = pt_index;
  hdr.match = match;
  hdr.remote_off = remote_off;
  hdr.length = length;
  hdr.user_ptr = user_ptr;
  hdr.md = md;
  send_to(target, hdr, std::move(data), tag);

  if (m.eq != nullptr) {
    post_send_event(Event{EventType::send, node(), match, remote_off,
                          length, user_ptr},
                    m.eq, length);
  }
}

void Portals::get(sim::Context& ctx, MdHandle md, std::uint64_t local_off,
                  std::uint64_t length, int target, int pt_index,
                  std::uint64_t match, std::uint64_t remote_off,
                  std::uint64_t user_ptr, bool notify, std::uint32_t ntag) {
  Md& m = md_ref(md);
  M3RMA_REQUIRE(local_off + length <= m.length, "get exceeds MD bounds");
  const std::uint64_t tag = trace::op_tag(node(), user_ptr);
  charge_inject(ctx, tag);

  WireHdr hdr;
  hdr.op = WireHdr::Op::get_req;
  hdr.notify = notify ? 1 : 0;
  hdr.ntag = ntag;
  hdr.pt_index = pt_index;
  hdr.match = match;
  hdr.remote_off = remote_off;
  hdr.length = length;
  hdr.user_ptr = user_ptr;
  hdr.md = md;
  hdr.local_off = local_off;
  send_to(target, hdr, {}, tag);
}

void Portals::atomic(sim::Context& ctx, AccOp op, NumType nt, MdHandle md,
                     std::uint64_t local_off, std::uint64_t length,
                     int target, int pt_index, std::uint64_t match,
                     std::uint64_t remote_off, std::uint64_t user_ptr,
                     bool want_ack, bool notify, std::uint32_t ntag) {
  M3RMA_REQUIRE(supports_atomics(),
                "network has no native atomics; use a serializer");
  M3RMA_REQUIRE(length % num_size(nt) == 0,
                "atomic length not a multiple of the element size");
  Md& m = md_ref(md);
  M3RMA_REQUIRE(local_off + length <= m.length, "atomic exceeds MD bounds");
  const std::uint64_t tag = trace::op_tag(node(), user_ptr);
  charge_inject(ctx, tag);
  std::vector<std::byte> data(length);
  if (length > 0) mem_->nic_read(m.base + local_off, data);

  WireHdr hdr;
  hdr.op = WireHdr::Op::atomic;
  hdr.acc_op = op;
  hdr.num_type = nt;
  hdr.want_ack = want_ack ? 1 : 0;
  hdr.notify = notify ? 1 : 0;
  hdr.ntag = ntag;
  hdr.pt_index = pt_index;
  hdr.match = match;
  hdr.remote_off = remote_off;
  hdr.length = length;
  hdr.user_ptr = user_ptr;
  hdr.md = md;
  send_to(target, hdr, std::move(data), tag);

  if (m.eq != nullptr) {
    post_send_event(Event{EventType::send, node(), match, remote_off,
                          length, user_ptr},
                    m.eq, length);
  }
}

void Portals::fetch_atomic(sim::Context& ctx, RmwOp op, NumType nt,
                           MdHandle md, std::uint64_t local_off,
                           std::uint64_t fetch_off, int target, int pt_index,
                           std::uint64_t match, std::uint64_t remote_off,
                           std::uint64_t user_ptr) {
  M3RMA_REQUIRE(supports_atomics(),
                "network has no native atomics; use a serializer");
  Md& m = md_ref(md);
  const std::uint64_t payload_len =
      op == RmwOp::compare_swap ? 2 * num_size(nt) : num_size(nt);
  M3RMA_REQUIRE(local_off + payload_len <= m.length,
                "fetch_atomic operand exceeds MD bounds");
  M3RMA_REQUIRE(fetch_off + num_size(nt) <= m.length,
                "fetch_atomic result slot exceeds MD bounds");
  const std::uint64_t tag = trace::op_tag(node(), user_ptr);
  charge_inject(ctx, tag);
  std::vector<std::byte> data(payload_len);
  mem_->nic_read(m.base + local_off, data);

  WireHdr hdr;
  hdr.op = WireHdr::Op::fetch_atomic;
  hdr.rmw_op = op;
  hdr.num_type = nt;
  hdr.pt_index = pt_index;
  hdr.match = match;
  hdr.remote_off = remote_off;
  hdr.length = payload_len;
  hdr.user_ptr = user_ptr;
  hdr.md = md;
  hdr.local_off = fetch_off;
  send_to(target, hdr, std::move(data), tag);
}

// ------------------------------------------------------------- target side

void Portals::deliver(fabric::Packet&& p) {
  const auto hdr = fabric::get_header<WireHdr>(p);
  switch (hdr.op) {
    case WireHdr::Op::put: {
      Me* me = match_me(hdr.pt_index, hdr.match, hdr.remote_off, hdr.length);
      if (me == nullptr) {
        note_dropped(p.src, hdr.match, hdr.remote_off, hdr.length,
                     hdr.user_ptr);
        return;
      }
      if (hdr.length > 0) {
        mem_->nic_write(me->base + hdr.remote_off, p.payload);
      }
      matched_counts_[(static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(hdr.pt_index))
                       << 32) |
                      static_cast<std::uint32_t>(p.src)] += 1;
      if (me->eq != nullptr) {
        const Event ev{EventType::put, p.src, hdr.match, hdr.remote_off,
                       hdr.length, hdr.user_ptr};
        trace_eq("put", ev);
        me->eq->post(ev);
      }
      if (hdr.notify != 0) {
        fire_notify(p.src, hdr.match, hdr.remote_off, hdr.length,
                    hdr.user_ptr, hdr.ntag);
      }
      if (hdr.want_ack && supports_ack_events()) {
        WireHdr ack;
        ack.op = WireHdr::Op::ack;
        ack.md = hdr.md;
        ack.user_ptr = hdr.user_ptr;
        ack.match = hdr.match;
        ack.length = hdr.length;
        if (hdr.notify != 0) {
          ack.notify = 1;
          ack.ntag = hdr.ntag;
          ack.remote_off = nic_->fabric().engine().now();  // fire time
        }
        send_to(p.src, ack, {}, p.op);  // return leg keeps the op tag
      }
      break;
    }
    case WireHdr::Op::get_req: {
      Me* me = match_me(hdr.pt_index, hdr.match, hdr.remote_off, hdr.length);
      if (me == nullptr) {
        note_dropped(p.src, hdr.match, hdr.remote_off, hdr.length,
                     hdr.user_ptr);
        return;
      }
      std::vector<std::byte> data(hdr.length);
      if (hdr.length > 0) mem_->nic_read(me->base + hdr.remote_off, data);
      if (me->eq != nullptr) {
        const Event ev{EventType::get, p.src, hdr.match, hdr.remote_off,
                       hdr.length, hdr.user_ptr};
        trace_eq("get", ev);
        me->eq->post(ev);
      }
      if (hdr.notify != 0) {
        // A notified get tells the target "the origin read this region".
        fire_notify(p.src, hdr.match, hdr.remote_off, hdr.length,
                    hdr.user_ptr, hdr.ntag);
      }
      WireHdr reply;
      reply.op = WireHdr::Op::reply;
      reply.md = hdr.md;
      reply.local_off = hdr.local_off;
      reply.user_ptr = hdr.user_ptr;
      reply.match = hdr.match;
      reply.length = hdr.length;
      if (hdr.notify != 0) {
        reply.notify = 1;
        reply.ntag = hdr.ntag;
        reply.remote_off = nic_->fabric().engine().now();  // fire time
      }
      send_to(p.src, reply, std::move(data), p.op);
      break;
    }
    case WireHdr::Op::atomic: {
      Me* me = match_me(hdr.pt_index, hdr.match, hdr.remote_off, hdr.length);
      if (me == nullptr) {
        note_dropped(p.src, hdr.match, hdr.remote_off, hdr.length,
                     hdr.user_ptr);
        return;
      }
      if (hdr.length > 0) {
        apply_acc(hdr.acc_op, hdr.num_type,
                  mem_->raw(me->base + hdr.remote_off), p.payload.data(),
                  hdr.length, mem_->config().endian);
      }
      matched_counts_[(static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(hdr.pt_index))
                       << 32) |
                      static_cast<std::uint32_t>(p.src)] += 1;
      if (me->eq != nullptr) {
        const Event ev{EventType::atomic, p.src, hdr.match, hdr.remote_off,
                       hdr.length, hdr.user_ptr};
        trace_eq("atomic", ev);
        me->eq->post(ev);
      }
      if (hdr.notify != 0) {
        fire_notify(p.src, hdr.match, hdr.remote_off, hdr.length,
                    hdr.user_ptr, hdr.ntag);
      }
      if (hdr.want_ack && supports_ack_events()) {
        WireHdr ack;
        ack.op = WireHdr::Op::ack;
        ack.md = hdr.md;
        ack.user_ptr = hdr.user_ptr;
        ack.match = hdr.match;
        ack.length = hdr.length;
        if (hdr.notify != 0) {
          ack.notify = 1;
          ack.ntag = hdr.ntag;
          ack.remote_off = nic_->fabric().engine().now();
        }
        send_to(p.src, ack, {}, p.op);
      }
      break;
    }
    case WireHdr::Op::fetch_atomic: {
      const std::uint64_t elem = num_size(hdr.num_type);
      Me* me = match_me(hdr.pt_index, hdr.match, hdr.remote_off, elem);
      if (me == nullptr) {
        note_dropped(p.src, hdr.match, hdr.remote_off, elem, hdr.user_ptr);
        return;
      }
      auto old = apply_rmw(hdr.rmw_op, hdr.num_type,
                           mem_->raw(me->base + hdr.remote_off), p.payload,
                           mem_->config().endian);
      if (me->eq != nullptr) {
        const Event ev{EventType::atomic, p.src, hdr.match, hdr.remote_off,
                       elem, hdr.user_ptr};
        trace_eq("atomic", ev);
        me->eq->post(ev);
      }
      WireHdr reply;
      reply.op = WireHdr::Op::reply;
      reply.md = hdr.md;
      reply.local_off = hdr.local_off;
      reply.user_ptr = hdr.user_ptr;
      reply.match = hdr.match;
      reply.length = elem;
      send_to(p.src, reply, std::move(old), p.op);
      break;
    }
    case WireHdr::Op::reply: {
      auto it = mds_.find(hdr.md);
      if (it == mds_.end()) {
        // MD released while the reply was in flight.
        note_dropped(p.src, hdr.match, 0, hdr.length, hdr.user_ptr);
        return;
      }
      if (hdr.length > 0) {
        mem_->nic_write(it->second.base + hdr.local_off, p.payload);
      }
      if (hdr.notify != 0) {
        // remote_off echoes the target-side fire time: attribute the
        // notification leg [fire, reply-arrival] to the op's tag.
        if (auto* tl = trace::timeline(nic_->fabric().engine().tracer());
            tl != nullptr && tl->tracks(p.op)) {
          tl->add(p.op, trace::Segment::notify, hdr.remote_off,
                  nic_->fabric().engine().now());
        }
      }
      if (it->second.eq != nullptr) {
        const Event ev{EventType::reply, p.src, hdr.match, 0, hdr.length,
                       hdr.user_ptr};
        trace_eq("reply", ev);
        it->second.eq->post(ev);
      }
      break;
    }
    case WireHdr::Op::ack: {
      auto it = mds_.find(hdr.md);
      if (it == mds_.end()) {
        note_dropped(p.src, hdr.match, 0, hdr.length, hdr.user_ptr);
        return;
      }
      if (hdr.notify != 0) {
        if (auto* tl = trace::timeline(nic_->fabric().engine().tracer());
            tl != nullptr && tl->tracks(p.op)) {
          tl->add(p.op, trace::Segment::notify, hdr.remote_off,
                  nic_->fabric().engine().now());
        }
      }
      if (it->second.eq != nullptr) {
        const Event ev{EventType::ack, p.src, hdr.match, 0, hdr.length,
                       hdr.user_ptr};
        trace_eq("ack", ev);
        it->second.eq->post(ev);
      }
      break;
    }
  }
}

}  // namespace m3rma::portals
