#include "portals/atomics.hpp"

#include <algorithm>
#include <cstring>

#include "common/diagnostics.hpp"

namespace m3rma::portals {

std::size_t num_size(NumType t) {
  switch (t) {
    case NumType::i8:
      return 1;
    case NumType::i16:
      return 2;
    case NumType::i32:
    case NumType::f32:
      return 4;
    case NumType::i64:
    case NumType::u64:
    case NumType::f64:
      return 8;
  }
  throw Panic("unknown NumType");
}

bool acc_op_valid_for(AccOp op, NumType t) {
  const bool is_float = t == NumType::f32 || t == NumType::f64;
  switch (op) {
    case AccOp::band:
    case AccOp::bor:
    case AccOp::bxor:
      return !is_float;  // bitwise ops are integer-only, as in MPI
    default:
      return true;
  }
}

namespace {

template <class T>
T load(const std::byte* p, bool swap) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  if (swap) {
    auto* b = reinterpret_cast<std::byte*>(&v);
    swap_element(b, sizeof(T));
  }
  return v;
}

template <class T>
void store(std::byte* p, T v, bool swap) {
  if (swap) {
    auto* b = reinterpret_cast<std::byte*>(&v);
    swap_element(b, sizeof(T));
  }
  std::memcpy(p, &v, sizeof(T));
}

template <class T>
T combine(AccOp op, T a, T b) {
  switch (op) {
    case AccOp::replace:
      return b;
    case AccOp::sum:
      return static_cast<T>(a + b);
    case AccOp::prod:
      return static_cast<T>(a * b);
    case AccOp::min:
      return std::min(a, b);
    case AccOp::max:
      return std::max(a, b);
    case AccOp::band:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(a & b);
      }
      break;
    case AccOp::bor:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(a | b);
      }
      break;
    case AccOp::bxor:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(a ^ b);
      }
      break;
  }
  throw UsageError("accumulate op invalid for element type");
}

template <class T>
void acc_typed(AccOp op, std::byte* target, const std::byte* operand,
               std::size_t count, bool swap) {
  for (std::size_t i = 0; i < count; ++i) {
    const T cur = load<T>(target + i * sizeof(T), swap);
    const T val = load<T>(operand + i * sizeof(T), swap);
    store<T>(target + i * sizeof(T), combine(op, cur, val), swap);
  }
}

template <class T>
std::vector<std::byte> rmw_typed(RmwOp op, std::byte* target,
                                 std::span<const std::byte> payload,
                                 bool swap) {
  const T old = load<T>(target, swap);
  std::vector<std::byte> fetched(sizeof(T));
  store<T>(fetched.data(), old, swap);
  switch (op) {
    case RmwOp::fetch_add: {
      M3RMA_REQUIRE(payload.size() == sizeof(T), "fetch_add operand size");
      const T add = load<T>(payload.data(), swap);
      store<T>(target, static_cast<T>(old + add), swap);
      break;
    }
    case RmwOp::swap: {
      M3RMA_REQUIRE(payload.size() == sizeof(T), "swap operand size");
      const T val = load<T>(payload.data(), swap);
      store<T>(target, val, swap);
      break;
    }
    case RmwOp::compare_swap: {
      M3RMA_REQUIRE(payload.size() == 2 * sizeof(T),
                    "compare_swap payload must be [compare][desired]");
      const T cmp = load<T>(payload.data(), swap);
      const T des = load<T>(payload.data() + sizeof(T), swap);
      if (old == cmp) store<T>(target, des, swap);
      break;
    }
  }
  return fetched;
}

template <class Fn>
auto dispatch_num(NumType t, Fn&& fn) {
  switch (t) {
    case NumType::i8:
      return fn(std::int8_t{});
    case NumType::i16:
      return fn(std::int16_t{});
    case NumType::i32:
      return fn(std::int32_t{});
    case NumType::i64:
      return fn(std::int64_t{});
    case NumType::u64:
      return fn(std::uint64_t{});
    case NumType::f32:
      return fn(float{});
    case NumType::f64:
      return fn(double{});
  }
  throw Panic("unknown NumType");
}

}  // namespace

void apply_acc(AccOp op, NumType t, std::byte* target,
               const std::byte* operand, std::size_t bytes,
               Endian target_endian) {
  const std::size_t es = num_size(t);
  M3RMA_REQUIRE(bytes % es == 0, "atomic length not a multiple of the type");
  M3RMA_REQUIRE(acc_op_valid_for(op, t), "bitwise accumulate on float type");
  const bool swap = target_endian != host_endian();
  dispatch_num(t, [&](auto tag) {
    using T = decltype(tag);
    acc_typed<T>(op, target, operand, bytes / es, swap);
  });
}

std::vector<std::byte> apply_rmw(RmwOp op, NumType t, std::byte* target,
                                 std::span<const std::byte> payload,
                                 Endian target_endian) {
  const bool swap = target_endian != host_endian();
  return dispatch_num(t, [&](auto tag) {
    using T = decltype(tag);
    return rmw_typed<T>(op, target, payload, swap);
  });
}

}  // namespace m3rma::portals
