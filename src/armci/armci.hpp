// ARMCI-like communication interface (paper §VI, Nieplocha et al.).
//
// Reproduces the API semantics the paper contrasts with the strawman:
//   * contiguous, vector and strided Put/Get/Accumulate;
//   * blocking operations are ORDERED by the library; non-blocking
//     operations carry NO ordering guarantee;
//   * Accumulate is daxpy-like (y += a*x) and serialized at the target;
//   * ARMCI_Fence / ARMCI_AllFence for remote completion;
//   * collective ARMCI_Malloc-style allocation (unlike the strawman's
//     non-collective target_mem).
// What ARMCI cannot express — and the strawman adds — is per-op attribute
// selection (e.g. a blocking *unordered* put) and completion of op subsets.
//
// Implemented over the strawman engine, mirroring how both would sit on the
// same low-level transport (Portals here): blocking ops map to
// blocking+ordering attributes, accumulates to atomicity (serialized).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rma_engine.hpp"
#include "runtime/comm.hpp"
#include "runtime/world.hpp"

namespace m3rma::armci {

/// Non-blocking request handle (armci_hdl_t).
class Handle {
 public:
  Handle() = default;
  bool done() { return !req_.valid() || req_.test(); }

 private:
  friend class Armci;
  explicit Handle(core::Request req) : req_(std::move(req)) {}
  core::Request req_;
};

class Armci {
 public:
  /// ARMCI_Init: collective.
  Armci(runtime::Rank& rank, runtime::Comm& comm);

  /// ARMCI_Malloc: collective; every rank contributes `bytes` and receives
  /// the whole team's remotely-accessible regions. Returns this rank's
  /// local region address via local_base().
  void malloc_shared(std::uint64_t bytes);
  std::uint64_t local_base() const;

  // ----- blocking, ordered ---------------------------------------------------

  void put(std::uint64_t src, int rank, std::uint64_t dst_off,
           std::uint64_t bytes);
  void get(std::uint64_t dst, int rank, std::uint64_t src_off,
           std::uint64_t bytes);
  /// ARMCI_Acc (daxpy-like): remote[i] += scale * local[i], doubles,
  /// serialized at the target.
  void acc(double scale, std::uint64_t src, int rank, std::uint64_t dst_off,
           std::uint64_t count);

  /// ARMCI_PutS / ARMCI_GetS (one stride level): nblocks blocks of
  /// block_bytes, source stride src_stride, destination stride dst_stride.
  void put_strided(std::uint64_t src, std::uint64_t src_stride, int rank,
                   std::uint64_t dst_off, std::uint64_t dst_stride,
                   std::uint64_t block_bytes, std::uint64_t nblocks);
  void get_strided(std::uint64_t dst, std::uint64_t dst_stride, int rank,
                   std::uint64_t src_off, std::uint64_t src_stride,
                   std::uint64_t block_bytes, std::uint64_t nblocks);

  /// ARMCI_PutV/GetV-style generalized I/O vector: `pairs[i]` copies
  /// `bytes` from local address pairs[i].first to remote offset
  /// pairs[i].second (and vice versa for get_v). Issued as ONE scatter/
  /// gather operation via hindexed datatypes.
  void put_v(std::span<const std::pair<std::uint64_t, std::uint64_t>> pairs,
             std::uint64_t bytes, int rank);
  void get_v(std::span<const std::pair<std::uint64_t, std::uint64_t>> pairs,
             std::uint64_t bytes, int rank);

  // ----- non-blocking, unordered ----------------------------------------------

  Handle nb_put(std::uint64_t src, int rank, std::uint64_t dst_off,
                std::uint64_t bytes);
  Handle nb_get(std::uint64_t dst, int rank, std::uint64_t src_off,
                std::uint64_t bytes);
  void wait(Handle& h);

  // ----- completion -------------------------------------------------------------

  /// ARMCI_Fence: previous ops to `rank` are remotely complete on return.
  void fence(int rank);
  /// ARMCI_AllFence.
  void all_fence();
  /// Collective barrier (armci_msg_barrier).
  void barrier();

  core::RmaEngine& engine() { return *eng_; }

 private:
  const core::TargetMem& mem_of(int rank) const;

  runtime::Rank* rank_;
  runtime::Comm* comm_;
  std::unique_ptr<core::RmaEngine> eng_;
  std::vector<core::TargetMem> mems_;  // per comm rank, after malloc_shared
  std::uint64_t scratch_ = 0;          // staging for acc scaling
  std::uint64_t scratch_len_ = 0;
};

}  // namespace m3rma::armci
