#include "armci/armci.hpp"

#include <cstring>

#include "common/diagnostics.hpp"

namespace m3rma::armci {

using core::Attrs;
using core::RmaAttr;

Armci::Armci(runtime::Rank& rank, runtime::Comm& comm)
    : rank_(&rank), comm_(&comm) {
  core::EngineConfig cfg;
  // ARMCI serializes accumulates through a server/communication thread.
  cfg.serializer = core::SerializerKind::comm_thread;
  cfg.api_label = "armci";  // Table S6/S14 attribution axis
  eng_ = std::make_unique<core::RmaEngine>(rank, comm, cfg);
}

void Armci::malloc_shared(std::uint64_t bytes) {
  M3RMA_REQUIRE(mems_.empty(), "malloc_shared may be called once");
  auto buf = rank_->alloc(bytes);
  mems_ = eng_->exchange_all(eng_->attach(buf.addr, buf.size));
}

std::uint64_t Armci::local_base() const {
  return mem_of(comm_->rank()).base;
}

const core::TargetMem& Armci::mem_of(int rank) const {
  M3RMA_REQUIRE(!mems_.empty(), "call malloc_shared first");
  M3RMA_REQUIRE(rank >= 0 && rank < comm_->size(), "rank out of range");
  return mems_[static_cast<std::size_t>(rank)];
}

// ----------------------------------------------------------- blocking ops

void Armci::put(std::uint64_t src, int rank, std::uint64_t dst_off,
                std::uint64_t bytes) {
  eng_->put_bytes(src, mem_of(rank), dst_off, bytes, rank,
                  Attrs(RmaAttr::blocking) | RmaAttr::ordering);
}

void Armci::get(std::uint64_t dst, int rank, std::uint64_t src_off,
                std::uint64_t bytes) {
  eng_->get_bytes(dst, mem_of(rank), src_off, bytes, rank,
                  Attrs(RmaAttr::blocking) | RmaAttr::ordering);
}

void Armci::acc(double scale, std::uint64_t src, int rank,
                std::uint64_t dst_off, std::uint64_t count) {
  // Scale locally (a*x), then ship a serialized sum-accumulate (y += a*x).
  const std::uint64_t bytes = count * sizeof(double);
  if (scratch_len_ < bytes) {
    if (scratch_ != 0) rank_->memory().dealloc(scratch_);
    scratch_ = rank_->memory().alloc(bytes);
    scratch_len_ = bytes;
  }
  auto& mem = rank_->memory();
  std::vector<double> tmp(count);
  std::memcpy(tmp.data(), mem.raw(src), bytes);
  for (auto& v : tmp) v *= scale;
  std::memcpy(mem.raw(scratch_), tmp.data(), bytes);

  const auto f64 = dt::Datatype::float64();
  eng_->accumulate(portals::AccOp::sum, scratch_, count, f64, mem_of(rank),
                   dst_off, count, f64, rank,
                   Attrs(RmaAttr::blocking) | RmaAttr::ordering |
                       RmaAttr::atomicity);
}

void Armci::put_strided(std::uint64_t src, std::uint64_t src_stride,
                        int rank, std::uint64_t dst_off,
                        std::uint64_t dst_stride, std::uint64_t block_bytes,
                        std::uint64_t nblocks) {
  const auto b = dt::Datatype::byte();
  const auto src_dt = dt::Datatype::hvector(nblocks, block_bytes, src_stride,
                                            b);
  const auto dst_dt = dt::Datatype::hvector(nblocks, block_bytes, dst_stride,
                                            b);
  eng_->put(src, 1, src_dt, mem_of(rank), dst_off, 1, dst_dt, rank,
            Attrs(RmaAttr::blocking) | RmaAttr::ordering);
}

void Armci::get_strided(std::uint64_t dst, std::uint64_t dst_stride,
                        int rank, std::uint64_t src_off,
                        std::uint64_t src_stride, std::uint64_t block_bytes,
                        std::uint64_t nblocks) {
  const auto b = dt::Datatype::byte();
  const auto dst_dt = dt::Datatype::hvector(nblocks, block_bytes, dst_stride,
                                            b);
  const auto src_dt = dt::Datatype::hvector(nblocks, block_bytes, src_stride,
                                            b);
  eng_->get(dst, 1, dst_dt, mem_of(rank), src_off, 1, src_dt, rank,
            Attrs(RmaAttr::blocking) | RmaAttr::ordering);
}

void Armci::put_v(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> pairs,
    std::uint64_t bytes, int rank) {
  M3RMA_REQUIRE(!pairs.empty() && bytes > 0, "empty vector put");
  std::vector<std::uint64_t> lens(pairs.size(), bytes);
  std::vector<std::uint64_t> src_displs, dst_displs;
  for (const auto& [src, dst] : pairs) {
    src_displs.push_back(src);
    dst_displs.push_back(dst);
  }
  const auto b = dt::Datatype::byte();
  // Origin displacements are absolute domain addresses (origin_addr = 0).
  const auto src_dt = dt::Datatype::hindexed(lens, src_displs, b);
  const auto dst_dt = dt::Datatype::hindexed(lens, dst_displs, b);
  eng_->put(0, 1, src_dt, mem_of(rank), 0, 1, dst_dt, rank,
            Attrs(RmaAttr::blocking) | RmaAttr::ordering);
}

void Armci::get_v(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> pairs,
    std::uint64_t bytes, int rank) {
  M3RMA_REQUIRE(!pairs.empty() && bytes > 0, "empty vector get");
  std::vector<std::uint64_t> lens(pairs.size(), bytes);
  std::vector<std::uint64_t> src_displs, dst_displs;
  for (const auto& [dst, src] : pairs) {
    dst_displs.push_back(dst);
    src_displs.push_back(src);
  }
  const auto b = dt::Datatype::byte();
  const auto dst_dt = dt::Datatype::hindexed(lens, dst_displs, b);
  const auto src_dt = dt::Datatype::hindexed(lens, src_displs, b);
  eng_->get(0, 1, dst_dt, mem_of(rank), 0, 1, src_dt, rank,
            Attrs(RmaAttr::blocking) | RmaAttr::ordering);
}

// -------------------------------------------------------- non-blocking ops

Handle Armci::nb_put(std::uint64_t src, int rank, std::uint64_t dst_off,
                     std::uint64_t bytes) {
  // Unordered by contract: no attributes at all.
  return Handle(eng_->put_bytes(src, mem_of(rank), dst_off, bytes, rank));
}

Handle Armci::nb_get(std::uint64_t dst, int rank, std::uint64_t src_off,
                     std::uint64_t bytes) {
  return Handle(eng_->get_bytes(dst, mem_of(rank), src_off, bytes, rank));
}

void Armci::wait(Handle& h) {
  if (h.req_.valid()) h.req_.wait();
}

// --------------------------------------------------------------- completion

void Armci::fence(int rank) { eng_->complete(rank); }

void Armci::all_fence() { eng_->complete(core::kAllRanks); }

void Armci::barrier() { comm_->barrier(); }

}  // namespace m3rma::armci
