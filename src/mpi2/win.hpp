// MPI-2 one-sided communication baseline (the interface the paper revisits).
//
// Implements MPI_Win with the three synchronization methods of paper
// Figure 1:
//   a. fence            — Win::fence()
//   b. post-start-complete-wait — Win::post/start/complete/wait
//   c. lock-unlock      — Win::lock(LockType, rank) / Win::unlock(rank)
// plus MPI_Put/MPI_Get/MPI_Accumulate with datatypes.
//
// Deliberately kept faithful to MPI-2's restrictions so benches can measure
// what the strawman (src/core) removes:
//   * window creation is COLLECTIVE (Win's constructor), unlike TargetMem;
//   * all data transfer completes only at synchronization calls;
//   * no per-op completion/ordering control.
//
// Implementation notes: ops are issued eagerly over portals and counted;
// synchronization flushes (hardware ACKs where the network has completion
// events, zero-byte-get probes on ordered ack-less networks). Accumulate
// uses NIC atomics and therefore requires Capabilities::native_atomics,
// which holds on the Cray-XT5-like default configuration.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "datatype/datatype.hpp"
#include "portals/portals.hpp"
#include "runtime/comm.hpp"
#include "runtime/world.hpp"

namespace m3rma::mpi2 {

/// Portal table index used by windows for data transfer.
inline constexpr int kPtWin = 2;
/// Window control protocols start here; each window claims base + ctx id.
inline constexpr int kWinProtocolBase = 1000;

enum class LockType : std::uint8_t { shared, exclusive };

class Win {
 public:
  /// MPI_Win_create: collective over `comm`. Every rank contributes
  /// [addr, addr+len) of its own memory (len may be 0).
  Win(runtime::Rank& rank, runtime::Comm& comm, std::uint64_t addr,
      std::uint64_t len);
  /// MPI_Win_free (collective: quiesces and barriers).
  ~Win();
  Win(const Win&) = delete;
  Win& operator=(const Win&) = delete;

  // ----- data transfer (origin side) ---------------------------------------

  void put(std::uint64_t origin_addr, std::uint64_t origin_count,
           const dt::Datatype& origin_dt, int target,
           std::uint64_t target_disp, std::uint64_t target_count,
           const dt::Datatype& target_dt);
  void get(std::uint64_t origin_addr, std::uint64_t origin_count,
           const dt::Datatype& origin_dt, int target,
           std::uint64_t target_disp, std::uint64_t target_count,
           const dt::Datatype& target_dt);
  void accumulate(portals::AccOp op, std::uint64_t origin_addr,
                  std::uint64_t origin_count, const dt::Datatype& origin_dt,
                  int target, std::uint64_t target_disp,
                  std::uint64_t target_count, const dt::Datatype& target_dt);

  /// Contiguous-bytes shorthand.
  void put_bytes(std::uint64_t origin_addr, int target,
                 std::uint64_t target_disp, std::uint64_t len);
  void get_bytes(std::uint64_t origin_addr, int target,
                 std::uint64_t target_disp, std::uint64_t len);

  // ----- synchronization ------------------------------------------------------

  /// MPI_Win_fence: completes all outstanding RMA issued from and targeted
  /// at this rank, collectively.
  void fence();

  /// MPI_Win_post: expose my window to `origin_group` (comm ranks).
  void post(std::span<const int> origin_group);
  /// MPI_Win_start: begin an access epoch to `target_group`.
  void start(std::span<const int> target_group);
  /// MPI_Win_complete: finish the access epoch started by start().
  void complete();
  /// MPI_Win_wait: wait until every origin in the post group completed.
  void wait();

  /// MPI_Win_lock / MPI_Win_unlock (passive target).
  void lock(LockType type, int target);
  void unlock(int target);

  // ----- introspection ---------------------------------------------------------

  runtime::Comm& comm() { return *comm_; }
  std::uint64_t window_size(int target) const;
  std::uint64_t ops_issued() const { return ops_issued_; }

 private:
  struct CtrlHdr;
  struct RemoteWin {
    std::uint64_t match = 0;
    std::uint64_t length = 0;
    Endian endian = Endian::little;
  };
  struct PerTarget {
    std::uint64_t issued = 0;
    std::uint64_t acked = 0;
    std::uint64_t pending_replies = 0;
  };
  struct LockWaiter {
    int origin;
    LockType type;
  };

  void issue_put_like(bool is_acc, portals::AccOp op,
                      std::uint64_t origin_addr, std::uint64_t origin_count,
                      const dt::Datatype& origin_dt, int target,
                      std::uint64_t target_disp, std::uint64_t target_count,
                      const dt::Datatype& target_dt);
  void flush(const std::vector<int>& world_targets);
  void flush_one(int world_target);
  void drain();
  template <class Pred>
  void wait_for(Pred&& pred);
  void on_ctrl(fabric::Packet&& p);
  void send_ctrl(int world_target, const CtrlHdr& h);
  /// Close the attribution op `id` (trace::OpTimeline) at the current time.
  void end_op(std::uint64_t id);
  void try_grant_locks();
  void validate_transfer(std::uint64_t origin_addr,
                         std::uint64_t origin_count,
                         const dt::Datatype& origin_dt, int target,
                         std::uint64_t target_disp,
                         std::uint64_t target_count,
                         const dt::Datatype& target_dt) const;
  PerTarget& per(int world_rank);

  runtime::Rank* rank_;
  runtime::Comm* comm_;
  portals::Portals* ptl_;
  portals::EventQueue eq_;
  portals::MdHandle md_ = 0;
  portals::MeHandle me_ = 0;
  int proto_ = 0;
  std::uint64_t my_match_ = 0;
  std::uint64_t my_len_ = 0;
  std::vector<RemoteWin> remotes_;   // by comm rank
  std::vector<PerTarget> targets_;   // by world rank

  // PSCW state.
  std::vector<int> start_group_;            // comm ranks (access epoch)
  std::uint64_t posts_seen_ = 0;            // "post" notices received
  std::uint64_t completes_seen_ = 0;        // "complete" notices received
  std::uint64_t exposure_expected_ = 0;     // size of the post group

  // Passive-target lock manager (for my window).
  int excl_holder_ = -1;
  int shared_holders_ = 0;
  std::deque<LockWaiter> lock_queue_;
  // Origin-side: grants received, keyed by target world rank.
  std::unordered_map<int, bool> grant_pending_;

  std::uint64_t ops_issued_ = 0;

  // Latency attribution (DESIGN.md §10). Every put/get/accumulate call gets
  // a rank-unique op id (also its portals user_ptr, so acks and replies can
  // finish the op); ids are offset by the window's context id so concurrent
  // windows on one rank never collide in a shared OpTimeline. Allocation is
  // unconditional — attaching a timeline must not change any id stream.
  std::uint64_t op_base_ = 0;        // (ctx id + 1) << 28
  std::uint64_t next_op_seq_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> ack_pending_;
  std::vector<std::vector<std::uint64_t>> unacked_ops_;  // by world rank
};

}  // namespace m3rma::mpi2
