#include "mpi2/win.hpp"

#include <algorithm>
#include <cstring>

#include "common/diagnostics.hpp"
#include "trace/attribution.hpp"
#include "trace/recorder.hpp"

namespace m3rma::mpi2 {

struct Win::CtrlHdr {
  enum class Kind : std::uint8_t {
    post,             // target exposes its window to an origin (PSCW)
    complete_notice,  // origin finished its access epoch (PSCW)
    lock_req,
    lock_grant,
    unlock,
  };
  Kind kind = Kind::post;
  LockType lock_type = LockType::shared;
};

namespace {
struct WireInfo {
  std::uint64_t match = 0;
  std::uint64_t len = 0;
  std::uint8_t endian = 0;
};

/// Deferred-unpack state for gets in flight (completion happens at sync).
struct GetState {
  std::uint32_t pending = 0;
  std::uint64_t dest = 0;
  bool needs_unpack = false;
  bool needs_swap = false;
  std::uint64_t origin_addr = 0;
  std::uint64_t origin_count = 0;
  dt::Datatype origin_dt;
  dt::Datatype target_dt;
  std::uint64_t target_count = 0;
};

// One live map per Win instance would be cleaner as a member, but GetState
// must stay header-opaque; key it by Win pointer here.
}  // namespace

static std::unordered_map<const Win*,
                          std::unordered_map<std::uint64_t,
                                             std::shared_ptr<GetState>>>
    g_get_states;

Win::Win(runtime::Rank& rank, runtime::Comm& comm, std::uint64_t addr,
         std::uint64_t len)
    : rank_(&rank),
      comm_(&comm),
      ptl_(&rank.portals()),
      eq_(rank.world().engine()) {
  M3RMA_REQUIRE(len == 0 || rank.memory().contains(addr, len),
                "window region outside this rank's memory");

  // Collective creation: agree on a context id (leader + bcast).
  std::vector<std::byte> blob(sizeof(std::uint32_t));
  if (comm.rank() == 0) {
    const std::uint32_t id = rank.world().alloc_context_id();
    std::memcpy(blob.data(), &id, sizeof(id));
  }
  comm.bcast(blob, 0);
  std::uint32_t ctx_id = 0;
  std::memcpy(&ctx_id, blob.data(), sizeof(ctx_id));
  proto_ = kWinProtocolBase + static_cast<int>(ctx_id);

  my_match_ = (static_cast<std::uint64_t>(ctx_id) << 32) |
              static_cast<std::uint32_t>(rank.id());
  my_len_ = len;
  if (len > 0) {
    me_ = ptl_->me_append(kPtWin, my_match_, 0, addr, len, nullptr);
  }
  md_ = ptl_->md_bind(0, rank.memory().config().size, &eq_);
  targets_.resize(static_cast<std::size_t>(rank.world().size()));
  op_base_ = static_cast<std::uint64_t>(ctx_id + 1) << 28;
  unacked_ops_.resize(static_cast<std::size_t>(rank.world().size()));

  WireInfo mine{my_match_, len,
                static_cast<std::uint8_t>(rank.memory().config().endian)};
  const auto infos = comm.allgather_value(mine);
  remotes_.reserve(infos.size());
  for (const auto& i : infos) {
    remotes_.push_back(
        RemoteWin{i.match, i.len, static_cast<Endian>(i.endian)});
  }

  rank.world().fabric().nic(rank.id()).register_protocol(
      proto_, [this](fabric::Packet&& p) { on_ctrl(std::move(p)); });
  comm.barrier();
}

Win::~Win() {
  try {
    std::vector<int> all;
    for (int r = 0; r < comm_->size(); ++r) all.push_back(comm_->to_world(r));
    flush(all);
    comm_->barrier();
  } catch (...) {
    // Teardown during unwinding: skip the collective handshake.
  }
  rank_->world().fabric().nic(rank_->id()).unregister_protocol(proto_);
  if (me_ != 0) ptl_->me_unlink(me_);
  ptl_->md_release(md_);
  g_get_states.erase(this);
}

void Win::end_op(std::uint64_t id) {
  if (auto* tl = trace::timeline(rank_->world().engine().tracer())) {
    const std::uint64_t tag = trace::op_tag(rank_->id(), id);
    if (tl->tracks(tag)) tl->op_end(tag, rank_->ctx().now());
  }
}

Win::PerTarget& Win::per(int world_rank) {
  return targets_[static_cast<std::size_t>(world_rank)];
}

std::uint64_t Win::window_size(int target) const {
  return remotes_[static_cast<std::size_t>(target)].length;
}

void Win::validate_transfer(std::uint64_t origin_addr,
                            std::uint64_t origin_count,
                            const dt::Datatype& origin_dt, int target,
                            std::uint64_t target_disp,
                            std::uint64_t target_count,
                            const dt::Datatype& target_dt) const {
  M3RMA_REQUIRE(target >= 0 && target < comm_->size(),
                "target rank out of range");
  M3RMA_REQUIRE(origin_dt.matches(origin_count, target_dt, target_count),
                "origin/target datatype signatures do not match");
  const RemoteWin& rw = remotes_[static_cast<std::size_t>(target)];
  M3RMA_REQUIRE(target_disp + target_dt.extent() * target_count <= rw.length,
                "transfer exceeds the target window");
  M3RMA_REQUIRE(
      rank_->memory().contains(
          origin_addr,
          std::max<std::uint64_t>(origin_dt.extent() * origin_count, 1)),
      "origin buffer outside this rank's memory");
}

// ---------------------------------------------------------------- transfers

void Win::issue_put_like(bool is_acc, portals::AccOp op,
                         std::uint64_t origin_addr,
                         std::uint64_t origin_count,
                         const dt::Datatype& origin_dt, int target,
                         std::uint64_t target_disp,
                         std::uint64_t target_count,
                         const dt::Datatype& target_dt) {
  validate_transfer(origin_addr, origin_count, origin_dt, target,
                    target_disp, target_count, target_dt);
  if (is_acc) {
    M3RMA_REQUIRE(ptl_->supports_atomics(),
                  "mpi2 baseline accumulate needs NIC atomics");
    M3RMA_REQUIRE(target_dt.has_uniform_leaf(),
                  "accumulate requires a uniform-leaf datatype");
  }
  const RemoteWin& rw = remotes_[static_cast<std::size_t>(target)];
  const int t = comm_->to_world(target);
  const bool same_endian = rw.endian == rank_->memory().config().endian;
  const bool fast = origin_dt.is_contiguous() && target_dt.is_contiguous() &&
                    same_endian;
  const bool acks = ptl_->supports_ack_events();
  auto& mem = rank_->memory();

  std::uint64_t src_base = origin_addr;
  std::uint64_t staging = 0;
  if (!fast) {
    const std::uint64_t bytes = origin_dt.size() * origin_count;
    staging = mem.alloc(std::max<std::uint64_t>(bytes, 1));
    origin_dt.pack(mem.raw(origin_addr), origin_count, mem.raw(staging));
    if (!same_endian) {
      target_dt.byteswap_packed(mem.raw(staging), target_count);
    }
    src_base = staging;
  }

  const portals::NumType nt =
      is_acc ? [&] {
        using dt::LeafKind;
        switch (target_dt.uniform_leaf()) {
          case LeafKind::bytes:
          case LeafKind::i8:
            return portals::NumType::i8;
          case LeafKind::i16:
            return portals::NumType::i16;
          case LeafKind::i32:
            return portals::NumType::i32;
          case LeafKind::i64:
            return portals::NumType::i64;
          case LeafKind::u64:
            return portals::NumType::u64;
          case LeafKind::f32:
            return portals::NumType::f32;
          case LeafKind::f64:
            return portals::NumType::f64;
        }
        throw Panic("unknown LeafKind");
      }()
             : portals::NumType::i8;

  sim::Context& ctx = rank_->ctx();
  const std::uint64_t opid = op_base_ + ++next_op_seq_;
  auto* tl = trace::timeline(rank_->world().engine().tracer());
  if (tl != nullptr) {
    // Completion is deferred to the next synchronization call (MPI-2
    // semantics), but the op itself ends when its last ack (or, ack-less,
    // the flush that covers it) observes remote completion.
    tl->op_begin(trace::op_tag(rank_->id(), opid),
                 is_acc ? "win.accumulate" : "win.put", "deferred-sync",
                 "mpi2", ctx.now());
  }
  std::uint32_t blocks = 0;
  auto issue_block = [&](std::uint64_t mem_off, std::uint64_t packed_off,
                         std::uint64_t len) {
    if (len == 0) return;
    if (is_acc) {
      ptl_->atomic(ctx, op, nt, md_, src_base + packed_off, len, t, kPtWin,
                   rw.match, target_disp + mem_off, opid, acks);
    } else {
      ptl_->put(ctx, md_, src_base + packed_off, len, t, kPtWin, rw.match,
                target_disp + mem_off, opid, acks);
    }
    per(t).issued += 1;
    ops_issued_ += 1;
    blocks += 1;
  };
  if (fast) {
    issue_block(0, 0, target_dt.size() * target_count);
  } else {
    target_dt.for_each_block(target_count, [&](const dt::Block& b) {
      issue_block(b.mem_offset, b.packed_offset, b.nbytes());
    });
  }
  if (staging != 0) mem.dealloc(staging);
  if (tl != nullptr) {
    if (blocks == 0) {
      end_op(opid);  // nothing went on the wire: zero-length transfer
    } else if (acks) {
      ack_pending_[opid] = blocks;
    } else {
      unacked_ops_[static_cast<std::size_t>(t)].push_back(opid);
    }
  }
}

void Win::put(std::uint64_t origin_addr, std::uint64_t origin_count,
              const dt::Datatype& origin_dt, int target,
              std::uint64_t target_disp, std::uint64_t target_count,
              const dt::Datatype& target_dt) {
  issue_put_like(false, portals::AccOp::replace, origin_addr, origin_count,
                 origin_dt, target, target_disp, target_count, target_dt);
}

void Win::accumulate(portals::AccOp op, std::uint64_t origin_addr,
                     std::uint64_t origin_count,
                     const dt::Datatype& origin_dt, int target,
                     std::uint64_t target_disp, std::uint64_t target_count,
                     const dt::Datatype& target_dt) {
  issue_put_like(true, op, origin_addr, origin_count, origin_dt, target,
                 target_disp, target_count, target_dt);
}

void Win::get(std::uint64_t origin_addr, std::uint64_t origin_count,
              const dt::Datatype& origin_dt, int target,
              std::uint64_t target_disp, std::uint64_t target_count,
              const dt::Datatype& target_dt) {
  validate_transfer(origin_addr, origin_count, origin_dt, target,
                    target_disp, target_count, target_dt);
  const RemoteWin& rw = remotes_[static_cast<std::size_t>(target)];
  const int t = comm_->to_world(target);
  const bool same_endian = rw.endian == rank_->memory().config().endian;
  const bool fast = origin_dt.is_contiguous() && target_dt.is_contiguous() &&
                    same_endian;
  auto& mem = rank_->memory();

  auto st = std::make_shared<GetState>();
  const std::uint64_t id = op_base_ + ++next_op_seq_;
  auto* tl = trace::timeline(rank_->world().engine().tracer());
  if (tl != nullptr) {
    tl->op_begin(trace::op_tag(rank_->id(), id), "win.get", "deferred-sync",
                 "mpi2", rank_->ctx().now());
  }
  const std::uint64_t packed_len = target_dt.size() * target_count;
  if (fast) {
    st->dest = origin_addr;
  } else {
    st->dest = mem.alloc(std::max<std::uint64_t>(packed_len, 1));
    st->needs_unpack = true;
    st->needs_swap = !same_endian;
    st->origin_addr = origin_addr;
    st->origin_count = origin_count;
    st->origin_dt = origin_dt;
    st->target_dt = target_dt;
    st->target_count = target_count;
  }
  g_get_states[this][id] = st;

  sim::Context& ctx = rank_->ctx();
  auto issue_block = [&](std::uint64_t mem_off, std::uint64_t packed_off,
                         std::uint64_t len) {
    if (len == 0) return;
    ptl_->get(ctx, md_, st->dest + packed_off, len, t, kPtWin, rw.match,
              target_disp + mem_off, id);
    per(t).pending_replies += 1;
    st->pending += 1;
    ops_issued_ += 1;
  };
  if (fast) {
    issue_block(0, 0, packed_len);
  } else {
    target_dt.for_each_block(target_count, [&](const dt::Block& b) {
      issue_block(b.mem_offset, b.packed_offset, b.nbytes());
    });
  }
  if (st->pending == 0) {
    g_get_states[this].erase(id);
    if (tl != nullptr) end_op(id);  // zero-length transfer
  }
}

void Win::put_bytes(std::uint64_t origin_addr, int target,
                    std::uint64_t target_disp, std::uint64_t len) {
  const auto b = dt::Datatype::byte();
  put(origin_addr, len, b, target, target_disp, len, b);
}

void Win::get_bytes(std::uint64_t origin_addr, int target,
                    std::uint64_t target_disp, std::uint64_t len) {
  const auto b = dt::Datatype::byte();
  get(origin_addr, len, b, target, target_disp, len, b);
}

// ------------------------------------------------------------------ progress

void Win::drain() {
  while (auto ev = eq_.poll()) {
    switch (ev->type) {
      case portals::EventType::ack: {
        per(ev->initiator).acked += 1;
        auto it = ack_pending_.find(ev->user_ptr);
        if (it != ack_pending_.end() && --it->second == 0) {
          ack_pending_.erase(it);
          end_op(ev->user_ptr);
        }
        break;
      }
      case portals::EventType::reply: {
        if (per(ev->initiator).pending_replies > 0) {
          per(ev->initiator).pending_replies -= 1;
        }
        auto& states = g_get_states[this];
        auto it = states.find(ev->user_ptr);
        if (it != states.end()) {
          auto st = it->second;
          if (--st->pending == 0) {
            end_op(ev->user_ptr);
            if (st->needs_unpack) {
              auto& mem = rank_->memory();
              if (st->needs_swap) {
                st->target_dt.byteswap_packed(mem.raw(st->dest),
                                              st->target_count);
              }
              st->origin_dt.unpack(mem.raw(st->dest), st->origin_count,
                                   mem.raw(st->origin_addr));
              mem.dealloc(st->dest);
            }
            states.erase(it);
          }
        }
        break;
      }
      default:
        break;  // SEND events carry no completion obligation here
    }
  }
}

template <class Pred>
void Win::wait_for(Pred&& pred) {
  while (true) {
    drain();
    if (pred()) return;
    rank_->ctx().await(eq_.condition());
  }
}

void Win::flush_one(int world_target) {
  flush({world_target});
}

void Win::flush(const std::vector<int>& world_targets) {
  if (ptl_->supports_ack_events()) {
    wait_for([&] {
      for (int t : world_targets) {
        const PerTarget& pt = per(t);
        if (pt.acked < pt.issued || pt.pending_replies != 0) return false;
      }
      return true;
    });
    return;
  }
  // Ack-less: on an ordered network a zero-byte get probes delivery of all
  // earlier traffic on the same pair (FIFO both ways).
  M3RMA_REQUIRE(rank_->world().config().caps.ordered_delivery,
                "mpi2 baseline needs completion events or ordered delivery");
  for (int t : world_targets) {
    PerTarget& pt = per(t);
    if (pt.acked >= pt.issued && pt.pending_replies == 0) continue;
    // Find the target's comm rank for its match bits.
    int crank = -1;
    for (int r = 0; r < comm_->size(); ++r) {
      if (comm_->to_world(r) == t) crank = r;
    }
    M3RMA_ENSURE(crank >= 0, "flush target outside the window's comm");
    const RemoteWin& rw = remotes_[static_cast<std::size_t>(crank)];
    if (rw.length == 0 && pt.issued == 0 && pt.pending_replies == 0) {
      continue;
    }
    ptl_->get(rank_->ctx(), md_, 0, 0, t, kPtWin, rw.match, 0, 0);
    pt.pending_replies += 1;
  }
  wait_for([&] {
    for (int t : world_targets) {
      if (per(t).pending_replies != 0) return false;
    }
    return true;
  });
  for (int t : world_targets) {
    per(t).acked = per(t).issued;
    // Ack-less networks have no per-op completion signal; the probe above
    // proved delivery of everything earlier on this pair, so every open
    // put/accumulate to t ends here.
    auto& open = unacked_ops_[static_cast<std::size_t>(t)];
    for (const std::uint64_t id : open) end_op(id);
    open.clear();
  }
}

// --------------------------------------------------------------- fence sync

void Win::fence() {
  std::vector<int> all;
  for (int r = 0; r < comm_->size(); ++r) all.push_back(comm_->to_world(r));
  flush(all);
  comm_->barrier();
}

// ----------------------------------------------------------------- PSCW sync

void Win::post(std::span<const int> origin_group) {
  exposure_expected_ = origin_group.size();
  completes_seen_ = 0;
  CtrlHdr h;
  h.kind = CtrlHdr::Kind::post;
  for (int origin : origin_group) {
    send_ctrl(comm_->to_world(origin), h);
  }
}

void Win::start(std::span<const int> target_group) {
  start_group_.assign(target_group.begin(), target_group.end());
  const std::uint64_t needed = start_group_.size();
  wait_for([&] { return posts_seen_ >= needed; });
  posts_seen_ -= needed;
}

void Win::complete() {
  std::vector<int> wts;
  for (int r : start_group_) wts.push_back(comm_->to_world(r));
  flush(wts);
  CtrlHdr h;
  h.kind = CtrlHdr::Kind::complete_notice;
  for (int t : wts) send_ctrl(t, h);
  start_group_.clear();
}

void Win::wait() {
  wait_for([&] { return completes_seen_ >= exposure_expected_; });
  completes_seen_ -= exposure_expected_;
  exposure_expected_ = 0;
}

// ---------------------------------------------------------------- lock sync

void Win::lock(LockType type, int target) {
  const int t = comm_->to_world(target);
  grant_pending_[t] = true;
  CtrlHdr h;
  h.kind = CtrlHdr::Kind::lock_req;
  h.lock_type = type;
  send_ctrl(t, h);
  wait_for([&] { return !grant_pending_[t]; });
}

void Win::unlock(int target) {
  const int t = comm_->to_world(target);
  flush_one(t);
  CtrlHdr h;
  h.kind = CtrlHdr::Kind::unlock;
  send_ctrl(t, h);
}

void Win::try_grant_locks() {
  while (!lock_queue_.empty()) {
    const LockWaiter& w = lock_queue_.front();
    if (w.type == LockType::exclusive) {
      if (excl_holder_ >= 0 || shared_holders_ > 0) return;
      excl_holder_ = w.origin;
    } else {
      if (excl_holder_ >= 0) return;
      shared_holders_ += 1;
    }
    CtrlHdr g;
    g.kind = CtrlHdr::Kind::lock_grant;
    send_ctrl(w.origin, g);
    lock_queue_.pop_front();
  }
}

// ------------------------------------------------------------ control plane

void Win::send_ctrl(int world_target, const CtrlHdr& h) {
  fabric::Packet p;
  p.protocol = proto_;
  fabric::set_header(p, h);
  rank_->world().fabric().nic(rank_->id()).send(world_target, std::move(p));
}

void Win::on_ctrl(fabric::Packet&& p) {
  const auto h = fabric::get_header<CtrlHdr>(p);
  switch (h.kind) {
    case CtrlHdr::Kind::post:
      posts_seen_ += 1;
      break;
    case CtrlHdr::Kind::complete_notice:
      completes_seen_ += 1;
      break;
    case CtrlHdr::Kind::lock_req:
      lock_queue_.push_back(LockWaiter{p.src, h.lock_type});
      try_grant_locks();
      break;
    case CtrlHdr::Kind::lock_grant:
      grant_pending_[p.src] = false;
      break;
    case CtrlHdr::Kind::unlock:
      if (excl_holder_ == p.src) {
        excl_holder_ = -1;
      } else {
        M3RMA_ENSURE(shared_holders_ > 0,
                     "unlock without a matching lock");
        shared_holders_ -= 1;
      }
      try_grant_locks();
      break;
  }
  eq_.condition().notify_all();
}

}  // namespace m3rma::mpi2
