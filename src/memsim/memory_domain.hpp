// Per-node memory model.
//
// The paper (§III-B2) stresses that an MPI-3 RMA interface must work on
// non-cache-coherent machines such as the NEC SX series: the scalar unit
// reads through a write-through cache that is NOT invalidated by writes
// from other processors or from the network, so a target must execute a
// memory fence (or read uncached with vector instructions) to observe
// remotely written data.
//
// MemoryDomain models exactly that:
//   * coherent domains behave like plain memory;
//   * non-coherent domains keep scalar-cache line copies — cpu_read() can
//     return stale data after a nic_write() until fence() clears the cache
//     or cpu_read_uncached() (the vector path) is used.
//
// The domain also provides the node's RMA-addressable arena. Addresses are
// 64-bit offsets into the arena; raw() exposes a host pointer so local code
// can use natural C++ buffers on coherent nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/byteorder.hpp"
#include "common/diagnostics.hpp"
#include "simtime/engine.hpp"

namespace m3rma::memsim {

enum class Coherence : std::uint8_t {
  coherent,
  /// NEC-SX-like: scalar write-through cache, no invalidation on remote
  /// writes.
  noncoherent_writethrough,
};

struct DomainConfig {
  std::size_t size = std::size_t{16} << 20;
  Coherence coherence = Coherence::coherent;
  Endian endian = host_endian();
  /// Width of the node's address space (paper §III-B3: a special-purpose PE
  /// may be 32-bit while the host is 64-bit). attach() enforces that RMA
  /// buffers are representable.
  int addr_bits = 64;
  std::size_t cache_line = 64;
  /// Cost of a scalar-cache invalidating memory fence.
  sim::Time fence_cost_ns = 600;
};

class MemoryDomain {
 public:
  explicit MemoryDomain(DomainConfig cfg);
  MemoryDomain(const MemoryDomain&) = delete;
  MemoryDomain& operator=(const MemoryDomain&) = delete;

  const DomainConfig& config() const { return cfg_; }

  // ----- allocation ------------------------------------------------------

  /// Allocate `bytes` from the arena (first-fit free list). Returns the
  /// domain address; address 0 is never returned (reserved as null).
  std::uint64_t alloc(std::size_t bytes, std::size_t align = 8);
  void dealloc(std::uint64_t addr);
  std::size_t bytes_in_use() const { return in_use_; }

  /// Host pointer to `addr`. Valid as long as the domain lives; the arena
  /// never reallocates.
  std::byte* raw(std::uint64_t addr);
  const std::byte* raw(std::uint64_t addr) const;

  /// Bounds check helper for RMA layers.
  bool contains(std::uint64_t addr, std::size_t len) const;

  // ----- CPU-side access (the owning rank) -------------------------------

  void cpu_write(std::uint64_t addr, std::span<const std::byte> data);
  /// Scalar-unit read: on a non-coherent domain this may serve stale cached
  /// lines written before the last remote update.
  void cpu_read(std::uint64_t addr, std::span<std::byte> out);
  /// Vector-unit read: bypasses the scalar cache, always fresh.
  void cpu_read_uncached(std::uint64_t addr, std::span<std::byte> out) const;
  /// Invalidate the scalar cache. Returns the modeled cost so callers can
  /// charge it as virtual time (0 on coherent domains).
  sim::Time fence();

  // ----- NIC-side access (remote RMA lands here) --------------------------

  void nic_write(std::uint64_t addr, std::span<const std::byte> data);
  void nic_read(std::uint64_t addr, std::span<std::byte> out) const;

  // ----- statistics -------------------------------------------------------

  std::uint64_t fence_count() const { return fence_count_; }
  std::uint64_t cached_lines() const { return cache_.size(); }
  std::uint64_t nic_writes() const { return nic_writes_; }

 private:
  void check_range(std::uint64_t addr, std::size_t len) const;
  bool noncoherent() const {
    return cfg_.coherence == Coherence::noncoherent_writethrough;
  }

  DomainConfig cfg_;
  std::vector<std::byte> arena_;
  // Scalar cache: line index -> copy of the line at the time it was loaded
  // or last written by this CPU.
  std::unordered_map<std::uint64_t, std::vector<std::byte>> cache_;
  // Allocator: free list keyed by address -> length, plus per-block sizes.
  std::map<std::uint64_t, std::size_t> free_blocks_;
  std::unordered_map<std::uint64_t, std::size_t> allocated_;
  std::size_t in_use_ = 0;
  std::uint64_t fence_count_ = 0;
  std::uint64_t nic_writes_ = 0;
};

}  // namespace m3rma::memsim
