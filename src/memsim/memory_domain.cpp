#include "memsim/memory_domain.hpp"

#include <algorithm>
#include <cstring>

namespace m3rma::memsim {

namespace {
constexpr std::uint64_t kNullGuard = 64;  // keep address 0 unallocatable
}

MemoryDomain::MemoryDomain(DomainConfig cfg) : cfg_(cfg) {
  M3RMA_REQUIRE(cfg_.size >= 2 * kNullGuard, "domain too small");
  M3RMA_REQUIRE(cfg_.cache_line > 0, "cache line must be nonzero");
  M3RMA_REQUIRE(cfg_.addr_bits >= 16 && cfg_.addr_bits <= 64,
                "addr_bits out of range");
  if (cfg_.addr_bits < 64) {
    M3RMA_REQUIRE(cfg_.size <= (std::uint64_t{1} << cfg_.addr_bits),
                  "domain size exceeds the node's address space");
  }
  arena_.assign(cfg_.size, std::byte{0});
  free_blocks_.emplace(kNullGuard, cfg_.size - kNullGuard);
}

std::uint64_t MemoryDomain::alloc(std::size_t bytes, std::size_t align) {
  M3RMA_REQUIRE(bytes > 0, "alloc of zero bytes");
  M3RMA_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const std::uint64_t start = it->first;
    const std::size_t len = it->second;
    const std::uint64_t aligned = (start + align - 1) & ~(align - 1);
    const std::uint64_t pad = aligned - start;
    if (pad + bytes > len) continue;
    // Carve [aligned, aligned+bytes) out of this block.
    free_blocks_.erase(it);
    if (pad > 0) free_blocks_.emplace(start, pad);
    if (pad + bytes < len) {
      free_blocks_.emplace(aligned + bytes, len - pad - bytes);
    }
    allocated_.emplace(aligned, bytes);
    in_use_ += bytes;
    return aligned;
  }
  throw UsageError("memory domain out of space");
}

void MemoryDomain::dealloc(std::uint64_t addr) {
  auto it = allocated_.find(addr);
  M3RMA_REQUIRE(it != allocated_.end(), "dealloc of unallocated address");
  std::size_t len = it->second;
  in_use_ -= len;
  allocated_.erase(it);
  // Insert and coalesce with neighbors.
  auto [pos, inserted] = free_blocks_.emplace(addr, len);
  M3RMA_ENSURE(inserted, "free list corruption");
  if (pos != free_blocks_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_blocks_.erase(pos);
      pos = prev;
    }
  }
  auto next = std::next(pos);
  if (next != free_blocks_.end() &&
      pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_blocks_.erase(next);
  }
}

std::byte* MemoryDomain::raw(std::uint64_t addr) {
  check_range(addr, 1);
  return arena_.data() + addr;
}

const std::byte* MemoryDomain::raw(std::uint64_t addr) const {
  check_range(addr, 1);
  return arena_.data() + addr;
}

bool MemoryDomain::contains(std::uint64_t addr, std::size_t len) const {
  return addr < arena_.size() && len <= arena_.size() - addr;
}

void MemoryDomain::check_range(std::uint64_t addr, std::size_t len) const {
  M3RMA_REQUIRE(contains(addr, len), "memory access out of domain bounds");
}

void MemoryDomain::cpu_write(std::uint64_t addr,
                             std::span<const std::byte> data) {
  check_range(addr, data.size());
  // Write-through: memory is always updated.
  std::memcpy(arena_.data() + addr, data.data(), data.size());
  if (!noncoherent()) return;
  // Keep this CPU's cached copies consistent with its own writes.
  const std::uint64_t line_sz = cfg_.cache_line;
  const std::uint64_t first = addr / line_sz;
  const std::uint64_t last = (addr + data.size() - 1) / line_sz;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    auto it = cache_.find(ln);
    if (it == cache_.end()) continue;
    const std::uint64_t line_base = ln * line_sz;
    const std::uint64_t lo = std::max<std::uint64_t>(line_base, addr);
    const std::uint64_t hi =
        std::min<std::uint64_t>(line_base + line_sz, addr + data.size());
    std::memcpy(it->second.data() + (lo - line_base),
                data.data() + (lo - addr), hi - lo);
  }
}

void MemoryDomain::cpu_read(std::uint64_t addr, std::span<std::byte> out) {
  check_range(addr, out.size());
  if (!noncoherent()) {
    std::memcpy(out.data(), arena_.data() + addr, out.size());
    return;
  }
  // Scalar path: serve each overlapping line from the cache, loading missing
  // lines from memory (which freezes them until the next fence).
  const std::uint64_t line_sz = cfg_.cache_line;
  const std::uint64_t first = addr / line_sz;
  const std::uint64_t last = (addr + out.size() - 1) / line_sz;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    const std::uint64_t line_base = ln * line_sz;
    auto it = cache_.find(ln);
    if (it == cache_.end()) {
      const std::size_t avail =
          std::min<std::uint64_t>(line_sz, arena_.size() - line_base);
      std::vector<std::byte> copy(avail);
      std::memcpy(copy.data(), arena_.data() + line_base, avail);
      it = cache_.emplace(ln, std::move(copy)).first;
    }
    const std::uint64_t lo = std::max<std::uint64_t>(line_base, addr);
    const std::uint64_t hi =
        std::min<std::uint64_t>(line_base + it->second.size(),
                                addr + out.size());
    if (lo < hi) {
      std::memcpy(out.data() + (lo - addr),
                  it->second.data() + (lo - line_base), hi - lo);
    }
  }
}

void MemoryDomain::cpu_read_uncached(std::uint64_t addr,
                                     std::span<std::byte> out) const {
  check_range(addr, out.size());
  std::memcpy(out.data(), arena_.data() + addr, out.size());
}

sim::Time MemoryDomain::fence() {
  ++fence_count_;
  if (!noncoherent()) return 0;
  cache_.clear();
  return cfg_.fence_cost_ns;
}

void MemoryDomain::nic_write(std::uint64_t addr,
                             std::span<const std::byte> data) {
  check_range(addr, data.size());
  ++nic_writes_;
  // Remote writes land in memory without invalidating the scalar cache —
  // the essence of the non-coherent challenge in §III-B2.
  std::memcpy(arena_.data() + addr, data.data(), data.size());
}

void MemoryDomain::nic_read(std::uint64_t addr,
                            std::span<std::byte> out) const {
  check_range(addr, out.size());
  std::memcpy(out.data(), arena_.data() + addr, out.size());
}

}  // namespace m3rma::memsim
