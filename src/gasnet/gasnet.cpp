#include "gasnet/gasnet.hpp"

#include <cstring>

#include "common/diagnostics.hpp"
#include "trace/attribution.hpp"
#include "trace/recorder.hpp"

namespace m3rma::gasnet {

struct Gasnet::AmHdr {
  enum class Kind : std::uint8_t { request_short, request_medium,
                                   request_long, reply };
  Kind kind = Kind::request_short;
  std::int32_t handler = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t dst_off = 0;  // long AMs: placement within the segment
};

Gasnet::Gasnet(runtime::Rank& rank, runtime::Comm& comm)
    : rank_(&rank),
      comm_(&comm),
      ptl_(&rank.portals()),
      eq_(rank.world().engine()) {
  md_ = ptl_->md_bind(0, rank.memory().config().size, &eq_);
  auto& nic = rank.world().fabric().nic(rank.id());
  M3RMA_REQUIRE(!nic.protocol_registered(kAmProtocol),
                "one live Gasnet instance per rank at a time");
  nic.register_protocol(kAmProtocol,
                        [this](fabric::Packet&& p) { on_am(std::move(p)); });
  comm.barrier();
}

Gasnet::~Gasnet() {
  try {
    sync_all();
    comm_->barrier();
  } catch (...) {
  }
  rank_->world().fabric().nic(rank_->id()).unregister_protocol(kAmProtocol);
  if (me_ != 0) ptl_->me_unlink(me_);
  ptl_->md_release(md_);
}

int Gasnet::register_handler(HandlerFn fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<int>(handlers_.size() - 1);
}

void Gasnet::attach_segment(std::uint64_t addr, std::uint64_t len) {
  M3RMA_REQUIRE(segments_.empty(), "attach_segment may be called once");
  M3RMA_REQUIRE(len > 0 && rank_->memory().contains(addr, len),
                "segment outside this rank's memory");
  my_match_ = 0x6a5eull << 32 | static_cast<std::uint32_t>(rank_->id());
  me_ = ptl_->me_append(kPtSegment, my_match_, 0, addr, len, nullptr);
  struct Wire {
    std::uint64_t match, base, len;
  };
  const auto infos =
      comm_->allgather_value(Wire{my_match_, addr, len});
  for (const auto& i : infos) segments_.push_back(Segment{i.match, i.base, i.len});
}

std::uint64_t Gasnet::segment_size(int rank) const {
  M3RMA_REQUIRE(!segments_.empty(), "attach_segment first");
  M3RMA_REQUIRE(rank >= 0 && rank < comm_->size(), "rank out of range");
  return segments_[static_cast<std::size_t>(rank)].len;
}

// --------------------------------------------------------------- core AMs

void Gasnet::send_am(int dst_world, const AmHdr& h,
                     std::vector<std::byte> payload) {
  fabric::Packet p;
  p.protocol = kAmProtocol;
  fabric::set_header(p, h);
  p.payload = std::move(payload);
  rank_->world().fabric().nic(rank_->id()).send(dst_world, std::move(p));
}

void Gasnet::am_short(int dst, int handler, std::uint64_t a0,
                      std::uint64_t a1) {
  rank_->ctx().delay(rank_->world().config().costs.inject_overhead_ns);
  AmHdr h;
  h.kind = AmHdr::Kind::request_short;
  h.handler = handler;
  h.a0 = a0;
  h.a1 = a1;
  send_am(comm_->to_world(dst), h, {});
}

void Gasnet::am_medium(int dst, int handler,
                       std::span<const std::byte> payload, std::uint64_t a0,
                       std::uint64_t a1) {
  M3RMA_REQUIRE(payload.size() <= kMaxMedium,
                "medium AM exceeds gasnet_AMMaxMedium");
  rank_->ctx().delay(rank_->world().config().costs.inject_overhead_ns);
  AmHdr h;
  h.kind = AmHdr::Kind::request_medium;
  h.handler = handler;
  h.a0 = a0;
  h.a1 = a1;
  send_am(comm_->to_world(dst), h,
          std::vector<std::byte>(payload.begin(), payload.end()));
}

void Gasnet::am_long(int dst, int handler,
                     std::span<const std::byte> payload,
                     std::uint64_t dst_off, std::uint64_t a0,
                     std::uint64_t a1) {
  M3RMA_REQUIRE(!segments_.empty(), "long AM needs an attached segment");
  const Segment& seg = segments_[static_cast<std::size_t>(dst)];
  M3RMA_REQUIRE(dst_off + payload.size() <= seg.len,
                "long AM payload exceeds the destination segment");
  rank_->ctx().delay(rank_->world().config().costs.inject_overhead_ns);
  AmHdr h;
  h.kind = AmHdr::Kind::request_long;
  h.handler = handler;
  h.a0 = a0;
  h.a1 = a1;
  h.dst_off = dst_off;
  send_am(comm_->to_world(dst), h,
          std::vector<std::byte>(payload.begin(), payload.end()));
}

void Gasnet::reply_short(Token& tok, int handler, std::uint64_t a0,
                         std::uint64_t a1) {
  M3RMA_REQUIRE(!tok.replied_, "at most one reply per AM");
  tok.replied_ = true;
  AmHdr h;
  h.kind = AmHdr::Kind::reply;
  h.handler = handler;
  h.a0 = a0;
  h.a1 = a1;
  send_am(tok.src_, h, {});
}

void Gasnet::reply_medium(Token& tok, int handler,
                          std::span<const std::byte> payload,
                          std::uint64_t a0, std::uint64_t a1) {
  M3RMA_REQUIRE(!tok.replied_, "at most one reply per AM");
  M3RMA_REQUIRE(payload.size() <= kMaxMedium,
                "medium reply exceeds gasnet_AMMaxMedium");
  tok.replied_ = true;
  AmHdr h;
  h.kind = AmHdr::Kind::reply;
  h.handler = handler;
  h.a0 = a0;
  h.a1 = a1;
  send_am(tok.src_, h,
          std::vector<std::byte>(payload.begin(), payload.end()));
}

void Gasnet::on_am(fabric::Packet&& p) {
  const auto h = fabric::get_header<AmHdr>(p);
  M3RMA_ENSURE(h.handler >= 0 &&
                   static_cast<std::size_t>(h.handler) < handlers_.size(),
               "AM for an unregistered handler");
  ams_received_ += 1;
  Token tok(p.src, this);
  if (h.kind == AmHdr::Kind::request_long) {
    // Deposit the payload into my segment, then run the handler over it.
    const Segment& seg = segments_[static_cast<std::size_t>(comm_->rank())];
    rank_->memory().nic_write(seg.base + h.dst_off, p.payload);
    handlers_[static_cast<std::size_t>(h.handler)](
        tok,
        std::span<const std::byte>(rank_->memory().raw(seg.base + h.dst_off),
                                   p.payload.size()),
        h.a0, h.a1);
  } else {
    handlers_[static_cast<std::size_t>(h.handler)](tok, p.payload, h.a0,
                                                   h.a1);
  }
  eq_.condition().notify_all();
}

// ------------------------------------------------------------ extended API

Handle Gasnet::put_nb(int rank, std::uint64_t dst_off,
                      std::uint64_t src_addr, std::uint64_t bytes) {
  M3RMA_REQUIRE(!segments_.empty(), "extended API needs a segment");
  M3RMA_REQUIRE(ptl_->supports_ack_events() ||
                    rank_->world().config().caps.ordered_delivery,
                "gasnet baseline needs completion events or ordering");
  const Segment& seg = segments_[static_cast<std::size_t>(rank)];
  M3RMA_REQUIRE(dst_off + bytes <= seg.len, "put exceeds the segment");
  const std::uint64_t id = next_op_++;
  auto& op = ops_[id];
  op.pending = 1;
  outstanding_ += 1;
  if (auto* tl = trace::timeline(rank_->world().engine().tracer())) {
    tl->op_begin(trace::op_tag(rank_->id(), id), "gasnet.put", "nb",
                 "gasnet", rank_->ctx().now());
  }
  ptl_->put(rank_->ctx(), md_, src_addr, bytes, comm_->to_world(rank),
            kPtSegment, seg.match, dst_off, id,
            ptl_->supports_ack_events());
  if (!ptl_->supports_ack_events()) {
    // Probe with a zero-byte get: FIFO delivery makes its reply imply the
    // put has landed.
    ptl_->get(rank_->ctx(), md_, 0, 0, comm_->to_world(rank), kPtSegment,
              seg.match, 0, id);
  }
  return Handle(id);
}

Handle Gasnet::get_nb(std::uint64_t dst_addr, int rank,
                      std::uint64_t src_off, std::uint64_t bytes) {
  M3RMA_REQUIRE(!segments_.empty(), "extended API needs a segment");
  const Segment& seg = segments_[static_cast<std::size_t>(rank)];
  M3RMA_REQUIRE(src_off + bytes <= seg.len, "get exceeds the segment");
  const std::uint64_t id = next_op_++;
  auto& op = ops_[id];
  op.pending = 1;
  outstanding_ += 1;
  if (auto* tl = trace::timeline(rank_->world().engine().tracer())) {
    tl->op_begin(trace::op_tag(rank_->id(), id), "gasnet.get", "nb",
                 "gasnet", rank_->ctx().now());
  }
  ptl_->get(rank_->ctx(), md_, dst_addr, bytes, comm_->to_world(rank),
            kPtSegment, seg.match, src_off, id);
  return Handle(id);
}

void Gasnet::put(int rank, std::uint64_t dst_off, std::uint64_t src_addr,
                 std::uint64_t bytes) {
  Handle h = put_nb(rank, dst_off, src_addr, bytes);
  sync_nb(h);
}

void Gasnet::get(std::uint64_t dst_addr, int rank, std::uint64_t src_off,
                 std::uint64_t bytes) {
  Handle h = get_nb(dst_addr, rank, src_off, bytes);
  sync_nb(h);
}

void Gasnet::sync_nb(Handle& h) {
  if (!h.valid_) return;
  const std::uint64_t id = h.id_;
  wait_for([this, id] { return !ops_.contains(id); });
  h.valid_ = false;
}

void Gasnet::sync_all() {
  wait_for([this] { return outstanding_ == 0; });
}

void Gasnet::poll() { drain(); }

void Gasnet::drain() {
  while (auto ev = eq_.poll()) {
    if (ev->type != portals::EventType::ack &&
        ev->type != portals::EventType::reply) {
      continue;  // SEND events carry no completion obligation here
    }
    auto it = ops_.find(ev->user_ptr);
    if (it == ops_.end()) continue;
    if (--it->second.pending == 0) {
      ops_.erase(it);
      M3RMA_ENSURE(outstanding_ > 0, "op accounting underflow");
      outstanding_ -= 1;
      if (auto* tl = trace::timeline(rank_->world().engine().tracer())) {
        const std::uint64_t tag = trace::op_tag(rank_->id(), ev->user_ptr);
        if (tl->tracks(tag)) tl->op_end(tag, rank_->ctx().now());
      }
    }
  }
}

template <class Pred>
void Gasnet::wait_for(Pred&& pred) {
  while (true) {
    drain();
    if (pred()) return;
    rank_->ctx().await(eq_.condition());
  }
}

}  // namespace m3rma::gasnet
