// GASNet-like communication layer (paper §VI, Bonachea's GASNet 1.x).
//
// Core API: active messages in the three GASNet classes —
//   * short  (arguments only),
//   * medium (arguments + payload into a bounce buffer),
//   * long   (arguments + payload deposited into the remote segment) —
// with handler-table registration and reply-from-handler, handlers running
// at message delivery (poll-driven in real GASNet).
//
// Extended API: blocking and non-blocking put/get against the registered
// segment. Per the paper's comparison: NO accumulate operation and NO
// non-contiguous transfer support (clients loop over blocks themselves),
// and no way to request ordering between AMs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "portals/portals.hpp"
#include "runtime/comm.hpp"
#include "runtime/world.hpp"

namespace m3rma::gasnet {

/// Fabric protocol id of the AM core.
inline constexpr int kAmProtocol = 50;
/// Portal table index of the extended-API segment.
inline constexpr int kPtSegment = 4;
/// gasnet_AMMaxMedium analogue.
inline constexpr std::uint64_t kMaxMedium = 4096;

class Gasnet;

/// Handler token: identifies the requester and allows one reply.
class Token {
 public:
  int source() const { return src_; }
  bool replied() const { return replied_; }

 private:
  friend class Gasnet;
  Token(int src, Gasnet* gn) : src_(src), gn_(gn) {}
  int src_;
  Gasnet* gn_;
  bool replied_ = false;
};

/// AM handler: (token, payload, arg0, arg1). For long AMs the payload span
/// aliases the segment memory where the data was deposited.
using HandlerFn = std::function<void(Token&, std::span<const std::byte>,
                                     std::uint64_t, std::uint64_t)>;

/// Non-blocking extended-API handle.
class Handle {
 public:
  Handle() = default;

 private:
  friend class Gasnet;
  explicit Handle(std::uint64_t id) : id_(id), valid_(true) {}
  std::uint64_t id_ = 0;
  bool valid_ = false;
};

class Gasnet {
 public:
  /// gasnet_init: collective.
  Gasnet(runtime::Rank& rank, runtime::Comm& comm);
  ~Gasnet();
  Gasnet(const Gasnet&) = delete;
  Gasnet& operator=(const Gasnet&) = delete;

  /// Register a handler; every rank must register the same table in the
  /// same order (returns the handler index).
  int register_handler(HandlerFn fn);

  /// gasnet_attach: collective segment registration.
  void attach_segment(std::uint64_t addr, std::uint64_t len);
  std::uint64_t segment_size(int rank) const;

  // ----- core API -------------------------------------------------------------

  void am_short(int dst, int handler, std::uint64_t a0 = 0,
                std::uint64_t a1 = 0);
  void am_medium(int dst, int handler, std::span<const std::byte> payload,
                 std::uint64_t a0 = 0, std::uint64_t a1 = 0);
  /// Payload is deposited at `dst_off` within the destination segment
  /// before the handler runs.
  void am_long(int dst, int handler, std::span<const std::byte> payload,
               std::uint64_t dst_off, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0);
  /// Reply from inside a handler (at most once per token).
  void reply_short(Token& tok, int handler, std::uint64_t a0 = 0,
                   std::uint64_t a1 = 0);
  void reply_medium(Token& tok, int handler,
                    std::span<const std::byte> payload, std::uint64_t a0 = 0,
                    std::uint64_t a1 = 0);

  // ----- extended API -----------------------------------------------------------

  /// Blocking put into the remote segment (returns when remotely complete).
  void put(int rank, std::uint64_t dst_off, std::uint64_t src_addr,
           std::uint64_t bytes);
  /// Blocking get from the remote segment.
  void get(std::uint64_t dst_addr, int rank, std::uint64_t src_off,
           std::uint64_t bytes);
  Handle put_nb(int rank, std::uint64_t dst_off, std::uint64_t src_addr,
                std::uint64_t bytes);
  Handle get_nb(std::uint64_t dst_addr, int rank, std::uint64_t src_off,
                std::uint64_t bytes);
  void sync_nb(Handle& h);
  /// Wait for all outstanding extended-API ops (gasnet_wait_syncnbi_all).
  void sync_all();

  /// gasnet_AMPoll: drain pending completion events.
  void poll();

  std::uint64_t am_requests_received() const { return ams_received_; }

 private:
  struct AmHdr;
  struct OpState {
    bool done = false;
    std::uint32_t pending = 0;
  };

  void on_am(fabric::Packet&& p);
  void drain();
  template <class Pred>
  void wait_for(Pred&& pred);
  void send_am(int dst_world, const AmHdr& h,
               std::vector<std::byte> payload);

  runtime::Rank* rank_;
  runtime::Comm* comm_;
  portals::Portals* ptl_;
  portals::EventQueue eq_;
  portals::MdHandle md_ = 0;
  portals::MeHandle me_ = 0;
  std::uint64_t my_match_ = 0;

  std::vector<HandlerFn> handlers_;
  struct Segment {
    std::uint64_t match = 0;
    std::uint64_t base = 0;
    std::uint64_t len = 0;
  };
  std::vector<Segment> segments_;  // per comm rank

  std::unordered_map<std::uint64_t, OpState> ops_;
  // Op ids double as portals user_ptr cookies and attribution tags
  // (trace::op_tag(rank, id), DESIGN.md §10); the offset keeps them out of
  // the id space a core::RmaEngine on the same rank would use, so both can
  // report into one OpTimeline.
  std::uint64_t next_op_ = (0x6aULL << 28) + 1;
  std::uint64_t outstanding_ = 0;
  std::uint64_t ams_received_ = 0;
};

}  // namespace m3rma::gasnet
