// apps::KvStore — an RMA-native sharded key-value store built purely on the
// strawman API (core::RmaEngine): the macro-workload layer ROADMAP item 2
// calls for, and the reproduction's answer to the distributed hashtables
// Gerstenberger et al. use as the flagship MPI-3 RMA application.
//
// Layout: the first `servers` ranks of the communicator each expose one
// shard — a fixed-capacity open-addressing bucket table in a
// core::TargetMem window. A shard window is
//
//   [ meta (64 B: occupancy word, fetch_add'd on insert) ]
//   [ slot 0 ][ slot 1 ] ... [ slot slots_per_shard-1 ]
//
// where a slot is [ tag (8 B) | counter (8 B) | value (value_bytes) ]. A
// tag of 0 means empty; a claimed slot holds key+1 and its tag never
// changes again (no deletes), which is what makes one-sided reads safe.
//
// Data path (all one-sided; servers never receive two-sided traffic and
// stay event-driven per the simtime invariants):
//   * insert  — claim the home slot with compare_swap(tag, 0 -> key+1);
//               a loser whose tag belongs to another key linear-probes on.
//               The claimer fetch_adds the shard occupancy word and writes
//               the value. Engine-native CAS is the "atomics-based locking".
//   * update  — one put of the value region (atomicity attribute by
//               default, so concurrent writers serialize at the target).
//   * lookup  — one get of the whole slot; the origin verifies the tag.
//   * counter — fetch_add on the slot's counter word (NIC-executed RMW).
//
// Clients cache key -> slot after the first locate, so the steady-state
// data path is a single one-sided op per access; start_get/start_put issue
// that fast path nonblocking for closed-loop drivers with an
// outstanding-op budget (apps::WorkloadGen).
//
// Construction is collective over the engine's communicator. With
// runtime::ReplicationConfig enabled the shard windows replicate like any
// other window: a server crash fails over to the backup transparently
// underneath this layer (tests/kvstore_test.cpp exercises exactly that).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/rma_engine.hpp"

namespace m3rma::apps {

/// How keys map to server shards.
enum class Sharding : std::uint8_t {
  hash,   ///< shard = mix64(key) % servers: spreads any key distribution
  range,  ///< shard = key / ceil(key_space/servers): contiguous key ranges,
          ///< the BigTable-style layout where skewed traffic makes one
          ///< shard hot (what bench/tab_kvstore measures)
};

struct KvConfig {
  /// Comm ranks [0, servers) host one shard each; the rest are clients.
  int servers = 2;
  std::uint64_t slots_per_shard = 1024;
  std::uint64_t value_bytes = 64;
  /// Key domain [0, key_space); range sharding partitions it. Keys outside
  /// are rejected.
  std::uint64_t key_space = 1024;
  Sharding sharding = Sharding::hash;
  /// Linear-probe budget before an insert reports overflow.
  int max_probes = 64;
  /// Value updates carry the atomicity attribute (target-side serializer)
  /// so concurrent writers to one slot never interleave bytes.
  bool atomic_puts = true;
};

enum class KvOutcome : std::uint8_t {
  inserted,  ///< put claimed a fresh slot
  updated,   ///< put overwrote an existing slot's value
  hit,       ///< get found the key
  miss,      ///< get/incr probing ended at an empty slot
  overflow,  ///< insert exhausted max_probes (shard full around the home)
  failed,    ///< the op completed with a non-ok engine status
  lost,      ///< the op failed with replica_lost: the shard window lost
             ///< every copy, so no retry can ever succeed (chaos harness
             ///< invariants count these separately from transient failures)
};

/// Client-side tallies, local to one rank (the simulator is sequential, so
/// summing them across captured rank bodies is race-free).
struct KvStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t incrs = 0;
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t overflows = 0;
  std::uint64_t failed = 0;   ///< every non-ok completion (includes lost)
  std::uint64_t lost = 0;     ///< the replica_lost subset of failed
  std::uint64_t probes = 0;         ///< slot reads/CAS tries past the first
  std::uint64_t cas_conflicts = 0;  ///< CAS lost to a different key's claim
  std::uint64_t cache_hits = 0;     ///< ops served from the location cache
};

class KvStore {
 public:
  static constexpr std::uint64_t kMetaBytes = 64;
  /// Byte offset of the shard occupancy word inside the meta region.
  static constexpr std::uint64_t kOccupancyOff = 0;

  /// Collective over the engine's communicator: server ranks allocate and
  /// attach their shard window, everyone receives every handle.
  KvStore(runtime::Rank& rank, core::RmaEngine& eng, KvConfig cfg);

  const KvConfig& config() const { return cfg_; }
  bool is_server() const { return eng_->comm().rank() < cfg_.servers; }
  int shard_of(std::uint64_t key) const;
  std::uint64_t slot_stride() const { return 16 + cfg_.value_bytes; }

  // ----- blocking operations ----------------------------------------------

  /// Insert or update. The value must be exactly value_bytes long.
  KvOutcome put(std::uint64_t key, std::span<const std::byte> value);
  /// Lookup; on hit copies min(out.size, value_bytes) value bytes out.
  KvOutcome get(std::uint64_t key, std::span<std::byte> out = {});
  /// fetch_add `delta` on the key's counter word, inserting the key (zero
  /// value) if absent. Returns the counter's previous value, or nullopt on
  /// overflow.
  std::optional<std::uint64_t> incr(std::uint64_t key, std::uint64_t delta);

  // ----- nonblocking cached fast path --------------------------------------

  /// In-flight one-sided KV op. Obtain from start_get/start_put, retire
  /// with finish(); movable, one finish() per op.
  struct AsyncOp {
    core::Request req;
    std::uint64_t key = 0;
    std::uint32_t slot = 0;
    std::uint64_t scratch = 0;  ///< pool buffer backing the transfer
    bool is_get = false;
    bool valid = false;
  };

  bool location_cached(std::uint64_t key) const {
    return cache_.find(key) != cache_.end();
  }
  /// Nonblocking one-sided read of the key's (cached) slot.
  AsyncOp start_get(std::uint64_t key);
  /// Nonblocking value update of the key's (cached) slot.
  AsyncOp start_put(std::uint64_t key, std::span<const std::byte> value);
  /// Wait for the op; gets verify the slot tag and optionally copy the
  /// value out. Returns hit/updated, failed on a non-ok engine status, or
  /// lost when the shard window is unrecoverable — the same drain the
  /// blocking path performs, so a crash mid-flight never trips the tag
  /// check on a failure-drained read.
  KvOutcome finish(AsyncOp& op, std::span<std::byte> out = {});

  // ----- introspection ------------------------------------------------------

  /// One-sided read of a shard's occupancy word (claimed slots).
  std::uint64_t shard_occupancy(int shard);
  const KvStats& stats() const { return stats_; }
  std::uint64_t cached_locations() const { return cache_.size(); }

 private:
  struct Loc {
    std::uint32_t slot = 0;
  };

  std::uint64_t slot_off(std::uint32_t slot) const {
    return kMetaBytes + static_cast<std::uint64_t>(slot) * slot_stride();
  }
  std::uint64_t home_slot(std::uint64_t key) const;
  std::uint64_t tag_of(std::uint64_t key) const { return key + 1; }
  std::uint64_t read_scratch_u64(std::uint64_t addr, int shard) const;
  /// Probe for the key's slot with one-sided tag reads; caches on success.
  /// nullopt = not present (empty slot or probe budget exhausted).
  std::optional<std::uint32_t> locate(std::uint64_t key);
  /// CAS-claim a slot for the key (insert protocol). Returns the slot and
  /// whether this call claimed it, or nullopt on overflow.
  std::optional<std::pair<std::uint32_t, bool>> claim(std::uint64_t key);
  AsyncOp start_get_at(std::uint64_t key, std::uint32_t slot);
  /// Account a non-ok completion and map its status to failed/lost — the
  /// one drain path shared by the blocking ops and finish().
  KvOutcome drain_failure(const core::Request& req);
  std::uint64_t scratch_acquire();
  void scratch_release(std::uint64_t addr);

  runtime::Rank* rank_;
  core::RmaEngine* eng_;
  KvConfig cfg_;
  std::vector<core::TargetMem> shards_;  // indexed by comm rank, servers only
  runtime::Rank::Buffer shard_buf_;      // server side; empty on clients
  std::unordered_map<std::uint64_t, Loc> cache_;
  std::vector<std::uint64_t> scratch_free_;  // slot-sized pool buffers
  KvStats stats_;
};

}  // namespace m3rma::apps
