// apps::WorkloadGen — deterministic closed-loop client driver for
// apps::KvStore.
//
// Each client rank owns one generator seeded from (seed, client index): keys
// come from a ZipfSampler over the store's key space (s = 0 is uniform), op
// kinds from a MixSampler over the get/put/rmw fractions. The driver keeps
// at most `window` nonblocking ops outstanding (closed loop with an
// outstanding-op budget): it issues via KvStore::start_get/start_put until
// the window fills, then retires the oldest in FIFO order, stamping each
// completed op's virtual-time latency into an apps::StatsSink histogram and
// its completion time into a local log for timeline bucketing
// (bench/tab_kvstore's --csv). RMW ops are engine-native blocking fetch_adds
// and count against the window as a full drain (the NIC executes them
// synchronously; paper §III-C).
//
// Everything downstream of the seed is deterministic: two runs of the same
// configuration produce identical op sequences, identical virtual-time
// trajectories, and byte-identical tables.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/kv_store.hpp"
#include "apps/stats_sink.hpp"
#include "common/rng.hpp"

namespace m3rma::apps {

struct WorkloadConfig {
  /// Zipf exponent for key popularity; 0 = uniform over the key space.
  double zipf_s = 0.0;
  /// Op mix; normalized, so any positive scale works.
  double get_frac = 0.80;
  double put_frac = 0.15;
  double rmw_frac = 0.05;
  /// Measured ops this client issues in run().
  std::uint64_t ops = 1000;
  /// Outstanding-op budget of the closed loop.
  int window = 8;
  std::uint64_t seed = 1;
};

class WorkloadGen {
 public:
  /// One completed op: when it retired (virtual time), what it was, where
  /// it went, and how long it took end-to-end.
  struct Completion {
    trace::Time done_at = 0;
    trace::Time latency = 0;
    OpKind kind = OpKind::get;
    std::uint16_t shard = 0;
  };

  /// `sink` may be null (latencies still accumulate in completions()).
  WorkloadGen(runtime::Rank& rank, KvStore& kv, WorkloadConfig cfg,
              StatsSink* sink = nullptr);

  /// Blocking-insert this client's share of the key space: keys with
  /// key % num_clients == client_index, round-robin, deterministic values.
  /// Returns the number of keys inserted.
  std::uint64_t preload(std::uint64_t client_index,
                        std::uint64_t num_clients);
  /// Blocking-get every key once so the location cache covers the whole
  /// key space and run() measures the steady-state one-op data path.
  void warm();
  /// The measured closed loop: cfg.ops issued, window-limited. Returns the
  /// number of ops that completed with a success outcome.
  std::uint64_t run();

  const std::vector<Completion>& completions() const { return done_; }
  const WorkloadConfig& config() const { return cfg_; }

 private:
  struct Inflight {
    KvStore::AsyncOp op;
    trace::Time issued_at = 0;
    OpKind kind = OpKind::get;
    std::uint16_t shard = 0;
  };

  void retire(Inflight& f);
  std::byte value_byte(std::uint64_t key) const;

  runtime::Rank* rank_;
  KvStore* kv_;
  WorkloadConfig cfg_;
  StatsSink* sink_;
  ZipfSampler keys_;
  MixSampler mix_;
  std::vector<std::byte> valbuf_;
  std::vector<Completion> done_;
  std::uint64_t ok_ = 0;
};

}  // namespace m3rma::apps
