#include "apps/workload.hpp"

#include <algorithm>
#include <deque>

#include "common/diagnostics.hpp"

namespace m3rma::apps {

WorkloadGen::WorkloadGen(runtime::Rank& rank, KvStore& kv, WorkloadConfig cfg,
                         StatsSink* sink)
    : rank_(&rank),
      kv_(&kv),
      cfg_(cfg),
      sink_(sink),
      keys_(kv.config().key_space, cfg.zipf_s,
            mix64(cfg.seed ^ (0xC11E57ull + static_cast<std::uint64_t>(
                                                rank.id())))),
      mix_({cfg.get_frac, cfg.put_frac, cfg.rmw_frac},
           mix64(cfg.seed ^ (0x0FF5E7ull + static_cast<std::uint64_t>(
                                               rank.id())))) {
  M3RMA_REQUIRE(cfg_.window >= 1, "closed loop needs a window of at least 1");
  valbuf_.resize(kv.config().value_bytes);
}

std::byte WorkloadGen::value_byte(std::uint64_t key) const {
  return static_cast<std::byte>(mix64(key) & 0xFF);
}

std::uint64_t WorkloadGen::preload(std::uint64_t client_index,
                                   std::uint64_t num_clients) {
  M3RMA_REQUIRE(num_clients >= 1 && client_index < num_clients,
                "preload: client_index must be < num_clients");
  std::uint64_t n = 0;
  for (std::uint64_t key = client_index; key < kv_->config().key_space;
       key += num_clients) {
    std::fill(valbuf_.begin(), valbuf_.end(), value_byte(key));
    const KvOutcome o = kv_->put(key, valbuf_);
    M3RMA_ENSURE(o == KvOutcome::inserted || o == KvOutcome::updated,
                 "preload insert did not land");
    ++n;
  }
  return n;
}

void WorkloadGen::warm() {
  for (std::uint64_t key = 0; key < kv_->config().key_space; ++key) {
    kv_->get(key);
  }
}

void WorkloadGen::retire(Inflight& f) {
  const KvOutcome o = kv_->finish(f.op);
  Completion c;
  c.done_at = rank_->ctx().now();
  c.latency = c.done_at - f.issued_at;
  c.kind = f.kind;
  c.shard = f.shard;
  if (o == KvOutcome::hit || o == KvOutcome::updated) ++ok_;
  if (sink_ != nullptr) {
    sink_->record_latency(c.kind, c.latency);
    sink_->count_shard_op(c.shard);
  }
  done_.push_back(c);
}

std::uint64_t WorkloadGen::run() {
  std::deque<Inflight> inflight;
  done_.reserve(done_.size() + cfg_.ops);
  for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
    const std::uint64_t key = keys_.next();
    const auto kind = static_cast<OpKind>(mix_.next());
    const auto shard = static_cast<std::uint16_t>(kv_->shard_of(key));
    if (kind == OpKind::rmw || !kv_->location_cached(key)) {
      // Blocking path: NIC-executed RMW, or a cold key that still needs its
      // probe walk. Counts against the budget as a full drain.
      const trace::Time t0 = rank_->ctx().now();
      bool okay = false;
      if (kind == OpKind::rmw) {
        okay = kv_->incr(key, 1).has_value();
      } else if (kind == OpKind::put) {
        std::fill(valbuf_.begin(), valbuf_.end(), value_byte(key));
        const KvOutcome o = kv_->put(key, valbuf_);
        okay = o == KvOutcome::inserted || o == KvOutcome::updated;
      } else {
        okay = kv_->get(key) == KvOutcome::hit;
      }
      Completion c;
      c.done_at = rank_->ctx().now();
      c.latency = c.done_at - t0;
      c.kind = kind;
      c.shard = shard;
      if (okay) ++ok_;
      if (sink_ != nullptr) {
        sink_->record_latency(c.kind, c.latency);
        sink_->count_shard_op(c.shard);
      }
      done_.push_back(c);
      continue;
    }
    if (static_cast<int>(inflight.size()) >= cfg_.window) {
      retire(inflight.front());
      inflight.pop_front();
    }
    Inflight f;
    f.issued_at = rank_->ctx().now();
    f.kind = kind;
    f.shard = shard;
    if (kind == OpKind::get) {
      f.op = kv_->start_get(key);
    } else {
      std::fill(valbuf_.begin(), valbuf_.end(), value_byte(key));
      f.op = kv_->start_put(key, valbuf_);
    }
    inflight.push_back(std::move(f));
  }
  while (!inflight.empty()) {
    retire(inflight.front());
    inflight.pop_front();
  }
  return ok_;
}

}  // namespace m3rma::apps
