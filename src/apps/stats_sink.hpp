// apps::StatsSink — the KV workload's funnel into the trace layer.
//
// Recorder histograms are keyed globally by name (one Recorder serves every
// World a bench runs), so the sink namespaces everything under a per-config
// prefix: latencies land in value histograms "<prefix>.get" / ".put" /
// ".rmw" (Category::apps) and per-shard completions in counters
// "<prefix>.shard<i>.ops". Tail latency comes back out through
// trace::Recorder::percentile — the single nearest-rank accessor — rather
// than a private re-sort of samples.
//
// A null Recorder makes every method a no-op (queries return nullopt/0), so
// rank bodies can record unconditionally; like all tracing, recording never
// perturbs virtual time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "trace/recorder.hpp"

namespace m3rma::apps {

/// The three KV data-path op kinds WorkloadGen issues.
enum class OpKind : std::uint8_t { get, put, rmw };
const char* op_kind_name(OpKind k);

class StatsSink {
 public:
  /// `prefix` namespaces this sink's histograms/counters, e.g.
  /// "kv[torus,zipf]". Null recorder = inert sink.
  explicit StatsSink(trace::Recorder* rec, std::string prefix = "kv");

  trace::Recorder* recorder() const { return rec_; }
  const std::string& prefix() const { return prefix_; }

  /// Record one completed op's virtual-time latency.
  void record_latency(OpKind kind, trace::Time ns);
  /// Count one data-path op against the shard it targeted.
  void count_shard_op(int shard, std::uint64_t delta = 1);

  // ----- queries (valid once the workload has run) -------------------------

  struct Tail {
    std::uint64_t count = 0;
    trace::Time p50 = 0;
    trace::Time p99 = 0;
    trace::Time p999 = 0;
  };
  /// Tail latency of one op kind; nullopt when nothing was recorded.
  std::optional<Tail> tail(OpKind kind) const;
  /// Tail latency over all op kinds combined ("<prefix>.all").
  std::optional<Tail> tail_all() const;
  std::uint64_t shard_ops(int shard) const;

  std::string hist_name(OpKind kind) const;
  std::string shard_counter_name(int shard) const;

 private:
  std::optional<Tail> tail_of(const std::string& name) const;

  trace::Recorder* rec_;
  std::string prefix_;
};

}  // namespace m3rma::apps
