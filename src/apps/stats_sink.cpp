#include "apps/stats_sink.hpp"

#include <utility>

namespace m3rma::apps {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::get:
      return "get";
    case OpKind::put:
      return "put";
    case OpKind::rmw:
      return "rmw";
  }
  return "?";
}

StatsSink::StatsSink(trace::Recorder* rec, std::string prefix)
    : rec_(rec), prefix_(std::move(prefix)) {}

std::string StatsSink::hist_name(OpKind kind) const {
  return prefix_ + "." + op_kind_name(kind);
}

std::string StatsSink::shard_counter_name(int shard) const {
  return prefix_ + ".shard" + std::to_string(shard) + ".ops";
}

void StatsSink::record_latency(OpKind kind, trace::Time ns) {
  if (auto* r = trace::want(rec_, trace::Category::apps)) {
    r->record_value(trace::Category::apps, hist_name(kind), ns);
    r->record_value(trace::Category::apps, prefix_ + ".all", ns);
  }
}

void StatsSink::count_shard_op(int shard, std::uint64_t delta) {
  if (auto* r = trace::want(rec_, trace::Category::apps)) {
    r->add_counter(trace::Category::apps, shard_counter_name(shard), delta);
  }
}

std::optional<StatsSink::Tail> StatsSink::tail_of(
    const std::string& name) const {
  if (rec_ == nullptr) return std::nullopt;
  const auto p50 = rec_->percentile(name, 50.0);
  if (!p50) return std::nullopt;
  Tail t;
  t.count = rec_->histogram(name)->count;
  t.p50 = *p50;
  t.p99 = *rec_->percentile(name, 99.0);
  t.p999 = *rec_->percentile(name, 99.9);
  return t;
}

std::optional<StatsSink::Tail> StatsSink::tail(OpKind kind) const {
  return tail_of(hist_name(kind));
}

std::optional<StatsSink::Tail> StatsSink::tail_all() const {
  return tail_of(prefix_ + ".all");
}

std::uint64_t StatsSink::shard_ops(int shard) const {
  return rec_ != nullptr ? rec_->counter(shard_counter_name(shard)) : 0;
}

}  // namespace m3rma::apps
