#include "apps/kv_store.hpp"

#include <cstring>

#include "common/byteorder.hpp"
#include "common/diagnostics.hpp"
#include "common/rng.hpp"

namespace m3rma::apps {

namespace {

std::uint64_t u64_at(const std::byte* p, Endian e) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  if (e != host_endian()) {
    swap_element(reinterpret_cast<std::byte*>(&v), 8);
  }
  return v;
}

}  // namespace

KvStore::KvStore(runtime::Rank& rank, core::RmaEngine& eng, KvConfig cfg)
    : rank_(&rank), eng_(&eng), cfg_(cfg) {
  M3RMA_REQUIRE(cfg_.servers >= 1 && cfg_.servers <= eng.comm().size(),
                "KvStore needs 1..comm_size server ranks");
  M3RMA_REQUIRE(cfg_.slots_per_shard >= 1, "KvStore needs at least one slot");
  M3RMA_REQUIRE(cfg_.key_space >= 1, "KvStore needs a nonempty key space");
  M3RMA_REQUIRE(cfg_.max_probes >= 1, "KvStore needs a probe budget");
  core::TargetMem mine;  // invalid on client ranks
  if (is_server()) {
    const std::uint64_t bytes =
        kMetaBytes + cfg_.slots_per_shard * slot_stride();
    shard_buf_ = rank_->alloc(bytes);
    std::memset(shard_buf_.data, 0, shard_buf_.size);
    mine = eng_->attach(shard_buf_.addr, shard_buf_.size);
  }
  shards_ = eng_->exchange_all(mine);
}

int KvStore::shard_of(std::uint64_t key) const {
  M3RMA_REQUIRE(key < cfg_.key_space, "key outside the configured key space");
  const auto servers = static_cast<std::uint64_t>(cfg_.servers);
  if (cfg_.sharding == Sharding::hash) {
    return static_cast<int>(mix64(key) % servers);
  }
  const std::uint64_t span = (cfg_.key_space + servers - 1) / servers;
  return static_cast<int>(std::min(key / span, servers - 1));
}

std::uint64_t KvStore::home_slot(std::uint64_t key) const {
  // Decorrelated from shard_of's hash so range and hash sharding spread
  // keys inside a shard the same way.
  return mix64(key ^ 0x9e3779b97f4a7c15ULL) % cfg_.slots_per_shard;
}

std::uint64_t KvStore::read_scratch_u64(std::uint64_t addr, int shard) const {
  return u64_at(rank_->memory().raw(addr), shards_[shard].endian);
}

std::uint64_t KvStore::scratch_acquire() {
  if (!scratch_free_.empty()) {
    const std::uint64_t addr = scratch_free_.back();
    scratch_free_.pop_back();
    return addr;
  }
  return rank_->memory().alloc(slot_stride());
}

void KvStore::scratch_release(std::uint64_t addr) {
  scratch_free_.push_back(addr);
}

KvOutcome KvStore::drain_failure(const core::Request& req) {
  stats_.failed += 1;
  if (req.status() == core::OpStatus::replica_lost) {
    stats_.lost += 1;
    return KvOutcome::lost;
  }
  return KvOutcome::failed;
}

std::optional<std::uint32_t> KvStore::locate(std::uint64_t key) {
  const int shard = shard_of(key);
  const std::uint64_t home = home_slot(key);
  const std::uint64_t scratch = scratch_acquire();
  for (int p = 0; p < cfg_.max_probes; ++p) {
    const auto slot = static_cast<std::uint32_t>(
        (home + static_cast<std::uint64_t>(p)) % cfg_.slots_per_shard);
    if (p > 0) stats_.probes += 1;
    core::Request req = eng_->get_bytes(scratch, shards_[shard],
                                        slot_off(slot), 8, shard);
    req.wait();
    if (req.failed()) {
      scratch_release(scratch);
      drain_failure(req);  // locate reports absence; only the stats differ
      return std::nullopt;
    }
    const std::uint64_t tag = read_scratch_u64(scratch, shard);
    if (tag == tag_of(key)) {
      scratch_release(scratch);
      cache_[key] = Loc{slot};
      return slot;
    }
    if (tag == 0) break;  // open addressing: an empty slot ends the chain
  }
  scratch_release(scratch);
  return std::nullopt;
}

std::optional<std::pair<std::uint32_t, bool>> KvStore::claim(
    std::uint64_t key) {
  const int shard = shard_of(key);
  const std::uint64_t home = home_slot(key);
  for (int p = 0; p < cfg_.max_probes; ++p) {
    const auto slot = static_cast<std::uint32_t>(
        (home + static_cast<std::uint64_t>(p)) % cfg_.slots_per_shard);
    if (p > 0) stats_.probes += 1;
    const std::uint64_t prev = eng_->compare_swap(
        shards_[shard], slot_off(slot), 0, tag_of(key), shard);
    if (prev == 0) {
      // Claimed: account the slot before publishing any value bytes.
      eng_->fetch_add(shards_[shard], kOccupancyOff, 1, shard);
      cache_[key] = Loc{slot};
      return std::make_pair(slot, true);
    }
    if (prev == tag_of(key)) {
      cache_[key] = Loc{slot};
      return std::make_pair(slot, false);
    }
    stats_.cas_conflicts += 1;  // another key's claim occupies this slot
  }
  return std::nullopt;
}

KvOutcome KvStore::put(std::uint64_t key, std::span<const std::byte> value) {
  M3RMA_REQUIRE(value.size() == cfg_.value_bytes,
                "put value must be exactly value_bytes long");
  stats_.puts += 1;
  bool claimed = false;
  auto it = cache_.find(key);
  std::uint32_t slot = 0;
  if (it != cache_.end()) {
    stats_.cache_hits += 1;
    slot = it->second.slot;
  } else {
    const auto c = claim(key);
    if (!c) {
      stats_.overflows += 1;
      return KvOutcome::overflow;
    }
    slot = c->first;
    claimed = c->second;
  }
  const int shard = shard_of(key);
  const std::uint64_t scratch = scratch_acquire();
  std::memcpy(rank_->memory().raw(scratch), value.data(), value.size());
  core::Attrs attrs(core::RmaAttr::remote_completion);
  if (cfg_.atomic_puts) attrs = attrs | core::RmaAttr::atomicity;
  core::Request req = eng_->put_bytes(scratch, shards_[shard],
                                      slot_off(slot) + 16, cfg_.value_bytes,
                                      shard, attrs);
  req.wait();
  scratch_release(scratch);
  if (req.failed()) {
    return drain_failure(req);
  }
  if (claimed) {
    stats_.inserts += 1;
    return KvOutcome::inserted;
  }
  stats_.updates += 1;
  return KvOutcome::updated;
}

KvOutcome KvStore::get(std::uint64_t key, std::span<std::byte> out) {
  stats_.gets += 1;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    stats_.cache_hits += 1;
    AsyncOp op = start_get_at(key, it->second.slot);
    return finish(op, out);
  }
  const int shard = shard_of(key);
  const std::uint64_t home = home_slot(key);
  const std::uint64_t scratch = scratch_acquire();
  for (int p = 0; p < cfg_.max_probes; ++p) {
    const auto slot = static_cast<std::uint32_t>(
        (home + static_cast<std::uint64_t>(p)) % cfg_.slots_per_shard);
    if (p > 0) stats_.probes += 1;
    core::Request req = eng_->get_bytes(scratch, shards_[shard],
                                        slot_off(slot), slot_stride(), shard);
    req.wait();
    if (req.failed()) {
      scratch_release(scratch);
      return drain_failure(req);
    }
    const std::uint64_t tag = read_scratch_u64(scratch, shard);
    if (tag == tag_of(key)) {
      cache_[key] = Loc{slot};
      if (!out.empty()) {
        const std::size_t n = std::min<std::size_t>(
            out.size(), static_cast<std::size_t>(cfg_.value_bytes));
        std::memcpy(out.data(), rank_->memory().raw(scratch + 16), n);
      }
      scratch_release(scratch);
      stats_.hits += 1;
      return KvOutcome::hit;
    }
    if (tag == 0) break;
  }
  scratch_release(scratch);
  stats_.misses += 1;
  return KvOutcome::miss;
}

std::optional<std::uint64_t> KvStore::incr(std::uint64_t key,
                                           std::uint64_t delta) {
  stats_.incrs += 1;
  std::uint32_t slot = 0;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    stats_.cache_hits += 1;
    slot = it->second.slot;
  } else if (auto found = locate(key)) {
    slot = *found;
  } else {
    // Absent: insert the key with a zero value (the shard buffer is zeroed
    // at construction, so a fresh claim's value region already reads 0).
    const auto c = claim(key);
    if (!c) {
      stats_.overflows += 1;
      return std::nullopt;
    }
    slot = c->first;
    if (c->second) stats_.inserts += 1;
  }
  const int shard = shard_of(key);
  return eng_->fetch_add(shards_[shard], slot_off(slot) + 8, delta, shard);
}

KvStore::AsyncOp KvStore::start_get(std::uint64_t key) {
  auto it = cache_.find(key);
  M3RMA_REQUIRE(it != cache_.end(),
                "start_get requires a cached slot location (get() caches)");
  stats_.gets += 1;
  stats_.cache_hits += 1;
  return start_get_at(key, it->second.slot);
}

KvStore::AsyncOp KvStore::start_get_at(std::uint64_t key,
                                       std::uint32_t slot) {
  const int shard = shard_of(key);
  AsyncOp op;
  op.key = key;
  op.slot = slot;
  op.scratch = scratch_acquire();
  op.is_get = true;
  op.valid = true;
  op.req = eng_->get_bytes(op.scratch, shards_[shard], slot_off(slot),
                           slot_stride(), shard);
  return op;
}

KvStore::AsyncOp KvStore::start_put(std::uint64_t key,
                                    std::span<const std::byte> value) {
  M3RMA_REQUIRE(value.size() == cfg_.value_bytes,
                "put value must be exactly value_bytes long");
  auto it = cache_.find(key);
  M3RMA_REQUIRE(it != cache_.end(),
                "start_put requires a cached slot location (put() caches)");
  stats_.puts += 1;
  stats_.cache_hits += 1;
  const int shard = shard_of(key);
  AsyncOp op;
  op.key = key;
  op.slot = it->second.slot;
  op.scratch = scratch_acquire();
  op.is_get = false;
  op.valid = true;
  std::memcpy(rank_->memory().raw(op.scratch), value.data(), value.size());
  core::Attrs attrs(core::RmaAttr::remote_completion);
  if (cfg_.atomic_puts) attrs = attrs | core::RmaAttr::atomicity;
  op.req = eng_->put_bytes(op.scratch, shards_[shard],
                           slot_off(op.slot) + 16, cfg_.value_bytes, shard,
                           attrs);
  return op;
}

KvOutcome KvStore::finish(AsyncOp& op, std::span<std::byte> out) {
  M3RMA_REQUIRE(op.valid, "finish on an empty or already-finished AsyncOp");
  op.valid = false;
  op.req.wait();
  if (op.req.failed()) {
    scratch_release(op.scratch);
    return drain_failure(op.req);
  }
  if (!op.is_get) {
    scratch_release(op.scratch);
    stats_.updates += 1;
    return KvOutcome::updated;
  }
  const int shard = shard_of(op.key);
  const std::uint64_t tag = read_scratch_u64(op.scratch, shard);
  // Tags are write-once (no deletes), so a cached location must still hold
  // the key it was cached for.
  M3RMA_ENSURE(tag == tag_of(op.key),
               "cached slot no longer holds the expected key");
  if (!out.empty()) {
    const std::size_t n = std::min<std::size_t>(
        out.size(), static_cast<std::size_t>(cfg_.value_bytes));
    std::memcpy(out.data(), rank_->memory().raw(op.scratch + 16), n);
  }
  scratch_release(op.scratch);
  stats_.hits += 1;
  return KvOutcome::hit;
}

std::uint64_t KvStore::shard_occupancy(int shard) {
  M3RMA_REQUIRE(shard >= 0 && shard < cfg_.servers,
                "shard_occupancy: no such shard");
  const std::uint64_t scratch = scratch_acquire();
  core::Request req =
      eng_->get_bytes(scratch, shards_[shard], kOccupancyOff, 8, shard);
  req.wait();
  M3RMA_ENSURE(!req.failed(), "shard_occupancy read failed");
  const std::uint64_t v = read_scratch_u64(scratch, shard);
  scratch_release(scratch);
  return v;
}

}  // namespace m3rma::apps
