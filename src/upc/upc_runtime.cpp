#include "upc/upc_runtime.hpp"

#include "common/diagnostics.hpp"

namespace m3rma::upc {

using core::Attrs;
using core::RmaAttr;

UpcRuntime::UpcRuntime(runtime::Rank& rank, runtime::Comm& comm,
                       std::uint64_t segment_bytes)
    : rank_(&rank), comm_(&comm) {
  core::EngineConfig cfg;
  cfg.serializer = core::SerializerKind::comm_thread;
  cfg.api_label = "upc";  // Table S6/S14 attribution axis
  eng_ = std::make_unique<core::RmaEngine>(rank, comm, cfg);
  segment_ = rank.alloc(segment_bytes, 64);
  mems_ = eng_->exchange_all(eng_->attach(segment_));
  scratch_len_ = 16 * 1024;
  scratch_ = used_;
  used_ += scratch_len_;
  comm.barrier();
}

const core::TargetMem& UpcRuntime::mem_of(int thread) const {
  M3RMA_REQUIRE(thread >= 0 && thread < comm_->size(),
                "thread out of range");
  return mems_[static_cast<std::size_t>(thread)];
}

void UpcRuntime::check(GlobalPtr p, std::uint64_t bytes) const {
  M3RMA_REQUIRE(p.valid(), "access through a null pointer-to-shared");
  M3RMA_REQUIRE(p.thread < comm_->size(), "pointer-to-shared thread range");
  M3RMA_REQUIRE(p.offset + bytes <= segment_.size,
                "access beyond the shared segment");
}

// ------------------------------------------------------------- allocation

GlobalPtr UpcRuntime::all_alloc(std::uint64_t nblocks,
                                std::uint64_t block_bytes) {
  M3RMA_REQUIRE(nblocks > 0 && block_bytes > 0, "empty shared allocation");
  const auto t = static_cast<std::uint64_t>(comm_->size());
  const std::uint64_t per_thread = (nblocks + t - 1) / t * block_bytes;
  const std::uint64_t base = (used_ + 63) & ~std::uint64_t{63};
  M3RMA_REQUIRE(base + per_thread <= segment_.size,
                "shared segment exhausted");
  used_ = base + per_thread;
  // Like upc_all_alloc, the call is collective and all threads compute the
  // same symmetric base.
  return GlobalPtr{0, base};
}

GlobalPtr UpcRuntime::block_ptr(GlobalPtr base, std::uint64_t i,
                                std::uint64_t block_bytes) const {
  M3RMA_REQUIRE(base.valid(), "block_ptr on a null pointer");
  const auto t = static_cast<std::uint64_t>(comm_->size());
  GlobalPtr p;
  p.thread = static_cast<std::int32_t>(
      (static_cast<std::uint64_t>(base.thread) + i) % t);
  p.offset = base.offset +
             ((static_cast<std::uint64_t>(base.thread) + i) / t) *
                 block_bytes;
  return p;
}

std::byte* UpcRuntime::local_ptr(GlobalPtr p) {
  M3RMA_REQUIRE(p.thread == my_thread(),
                "local_ptr requires local affinity (upc_cast rule)");
  check(p, 1);
  return rank_->memory().raw(segment_.addr + p.offset);
}

// ---------------------------------------------------------------- accesses

void UpcRuntime::do_read(GlobalPtr p, void* out, std::uint64_t bytes,
                         Strictness s) {
  check(p, bytes);
  M3RMA_REQUIRE(bytes <= scratch_len_, "access larger than staging slot");
  // A strict access is ordered after all my earlier shared accesses.
  if (s == Strictness::strict) eng_->order(core::kAllRanks);
  const Attrs attrs = Attrs(RmaAttr::blocking);
  eng_->get_bytes(segment_.addr + scratch_, mem_of(p.thread), p.offset,
                  bytes, p.thread, attrs);
  std::memcpy(out, rank_->memory().raw(segment_.addr + scratch_), bytes);
}

void UpcRuntime::do_write(GlobalPtr p, const void* in, std::uint64_t bytes,
                          Strictness s) {
  check(p, bytes);
  M3RMA_REQUIRE(bytes <= scratch_len_, "access larger than staging slot");
  std::memcpy(rank_->memory().raw(segment_.addr + scratch_), in, bytes);
  if (s == Strictness::strict) {
    eng_->order(core::kAllRanks);
    eng_->put_bytes(segment_.addr + scratch_, mem_of(p.thread), p.offset,
                    bytes, p.thread,
                    Attrs(RmaAttr::blocking) | RmaAttr::ordering |
                        RmaAttr::remote_completion);
  } else {
    eng_->put_bytes(segment_.addr + scratch_, mem_of(p.thread), p.offset,
                    bytes, p.thread, Attrs(RmaAttr::blocking));
  }
}

void UpcRuntime::memput(GlobalPtr dst, const void* src,
                        std::uint64_t bytes) {
  check(dst, bytes);
  M3RMA_REQUIRE(bytes <= scratch_len_, "memput larger than staging slot");
  std::memcpy(rank_->memory().raw(segment_.addr + scratch_), src, bytes);
  eng_->put_bytes(segment_.addr + scratch_, mem_of(dst.thread), dst.offset,
                  bytes, dst.thread, Attrs(RmaAttr::blocking));
}

void UpcRuntime::memget(void* dst, GlobalPtr src, std::uint64_t bytes) {
  check(src, bytes);
  M3RMA_REQUIRE(bytes <= scratch_len_, "memget larger than staging slot");
  eng_->get_bytes(segment_.addr + scratch_, mem_of(src.thread), src.offset,
                  bytes, src.thread, Attrs(RmaAttr::blocking));
  std::memcpy(dst, rank_->memory().raw(segment_.addr + scratch_), bytes);
}

// ----------------------------------------------------------- synchronization

void UpcRuntime::fence() { eng_->order(core::kAllRanks); }

void UpcRuntime::barrier() {
  eng_->complete_collective();
}

// ------------------------------------------------------------------- locks

GlobalPtr UpcRuntime::lock_alloc() {
  // One 8-byte word with affinity to thread 0; 0 = free, else holder+1.
  GlobalPtr l = all_alloc(1, 8);
  if (my_thread() == 0) {
    std::uint64_t zero = 0;
    std::memcpy(rank_->memory().raw(segment_.addr + l.offset), &zero, 8);
  }
  comm_->barrier();
  return l;
}

bool UpcRuntime::lock_attempt(GlobalPtr l) {
  const std::uint64_t me = static_cast<std::uint64_t>(my_thread()) + 1;
  return eng_->compare_swap(mem_of(l.thread), l.offset, 0, me, l.thread) ==
         0;
}

void UpcRuntime::lock(GlobalPtr l) {
  // CAS spin with linear backoff; bounded so a lost unlock is detected.
  sim::Time backoff = 500;
  const sim::Time deadline = rank_->ctx().now() + 10'000'000'000ULL;
  while (!lock_attempt(l)) {
    M3RMA_ENSURE(rank_->ctx().now() < deadline,
                 "upc_lock spun for 10 virtual seconds");
    rank_->ctx().delay(backoff);
    if (backoff < 16000) backoff *= 2;
  }
}

void UpcRuntime::unlock(GlobalPtr l) {
  const std::uint64_t me = static_cast<std::uint64_t>(my_thread()) + 1;
  // Release with a swap so a non-holder unlock is detectable.
  const std::uint64_t prev =
      eng_->swap_val(mem_of(l.thread), l.offset, 0, l.thread);
  M3RMA_ENSURE(prev == me, "upc_unlock by a thread that does not hold it");
}

}  // namespace m3rma::upc
