// UPC-style PGAS runtime (paper §II: "Partitioned Global Address Space
// (PGAS) languages such as UPC ... rely on efficient RMA operations. ...
// The passive target mode is more suitable for use as a compilation target
// for PGAS languages because of its truly one-sided nature.")
//
// This is the runtime a UPC compiler would emit calls into, built on the
// strawman engine:
//   * shared objects with affinity: GlobalPtr = (thread, offset), blocks of
//     upc_all_alloc round-robin across threads;
//   * RELAXED accesses -> attribute-free RMA ("unrestricted,
//     high-performance remote memory access");
//   * STRICT accesses  -> ordering + remote completion (the strict
//     operation is ordered w.r.t. every other access of this thread);
//   * upc_fence / upc_barrier -> order / complete_collective+barrier;
//   * upc_lock -> compare-and-swap spinlocks in shared space (§V RMW).
//
// The relaxed/strict split is exactly the hybrid consistency of §III-A1:
// the runtime picks the consistency level per access, which is what the
// strawman's per-call attributes were designed for.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/rma_engine.hpp"
#include "runtime/comm.hpp"
#include "runtime/world.hpp"

namespace m3rma::upc {

enum class Strictness : std::uint8_t { relaxed, strict };

/// Pointer-to-shared: which UPC thread has affinity, and the offset within
/// that thread's shared segment.
struct GlobalPtr {
  std::int32_t thread = -1;
  std::uint64_t offset = 0;

  bool valid() const { return thread >= 0; }
  friend bool operator==(const GlobalPtr&, const GlobalPtr&) = default;
};

class UpcRuntime {
 public:
  /// Collective; carves each thread's shared segment.
  UpcRuntime(runtime::Rank& rank, runtime::Comm& comm,
             std::uint64_t segment_bytes = std::uint64_t{1} << 20);

  int my_thread() const { return comm_->rank(); }
  int threads() const { return comm_->size(); }

  // ----- shared allocation ---------------------------------------------------

  /// upc_all_alloc(nblocks, block_bytes): collective; blocks are laid out
  /// round-robin by affinity (block i on thread i % THREADS). Returns the
  /// pointer to block 0.
  GlobalPtr all_alloc(std::uint64_t nblocks, std::uint64_t block_bytes);

  /// Pointer arithmetic over a blocked array allocated with all_alloc:
  /// the pointer to block `i`.
  GlobalPtr block_ptr(GlobalPtr base, std::uint64_t i,
                      std::uint64_t block_bytes) const;

  /// Host pointer for casts of shared data with LOCAL affinity
  /// (upc_cast): only valid when ptr.thread == my_thread().
  std::byte* local_ptr(GlobalPtr p);

  // ----- shared accesses --------------------------------------------------------

  template <class T>
  T read(GlobalPtr p, Strictness s = Strictness::relaxed) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    do_read(p, &v, sizeof(T), s);
    return v;
  }
  template <class T>
  void write(GlobalPtr p, const T& v, Strictness s = Strictness::relaxed) {
    static_assert(std::is_trivially_copyable_v<T>);
    do_write(p, &v, sizeof(T), s);
  }

  /// upc_memput / upc_memget: relaxed bulk transfers.
  void memput(GlobalPtr dst, const void* src, std::uint64_t bytes);
  void memget(void* dst, GlobalPtr src, std::uint64_t bytes);

  // ----- synchronization ----------------------------------------------------------

  /// upc_fence: order my earlier shared accesses before later ones.
  void fence();
  /// upc_barrier: strict synchronization of all threads (completes all
  /// outstanding shared accesses everywhere).
  void barrier();

  // ----- locks (§V RMW in anger) ----------------------------------------------------

  /// upc_all_lock_alloc: collective, returns a shared lock object.
  GlobalPtr lock_alloc();
  void lock(GlobalPtr l);
  /// Returns true if the lock was free and is now held (upc_lock_attempt).
  bool lock_attempt(GlobalPtr l);
  void unlock(GlobalPtr l);

  core::RmaEngine& engine() { return *eng_; }

 private:
  void do_read(GlobalPtr p, void* out, std::uint64_t bytes, Strictness s);
  void do_write(GlobalPtr p, const void* in, std::uint64_t bytes,
                Strictness s);
  const core::TargetMem& mem_of(int thread) const;
  void check(GlobalPtr p, std::uint64_t bytes) const;

  runtime::Rank* rank_;
  runtime::Comm* comm_;
  std::unique_ptr<core::RmaEngine> eng_;
  runtime::Rank::Buffer segment_{};
  std::vector<core::TargetMem> mems_;
  std::uint64_t used_ = 0;      // symmetric bump pointer (collective calls)
  std::uint64_t scratch_ = 0;   // staging slot for user-buffer transfers
  std::uint64_t scratch_len_ = 0;
};

}  // namespace m3rma::upc
