file(REMOVE_RECURSE
  "CMakeFiles/upc_histogram.dir/upc_histogram.cpp.o"
  "CMakeFiles/upc_histogram.dir/upc_histogram.cpp.o.d"
  "upc_histogram"
  "upc_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upc_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
