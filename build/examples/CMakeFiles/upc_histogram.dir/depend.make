# Empty dependencies file for upc_histogram.
# This may be replaced when dependencies are built.
