# Empty dependencies file for pgas_array.
# This may be replaced when dependencies are built.
