file(REMOVE_RECURSE
  "CMakeFiles/pgas_array.dir/pgas_array.cpp.o"
  "CMakeFiles/pgas_array.dir/pgas_array.cpp.o.d"
  "pgas_array"
  "pgas_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgas_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
