# Empty compiler generated dependencies file for mpi2_sync_modes.
# This may be replaced when dependencies are built.
