file(REMOVE_RECURSE
  "CMakeFiles/mpi2_sync_modes.dir/mpi2_sync_modes.cpp.o"
  "CMakeFiles/mpi2_sync_modes.dir/mpi2_sync_modes.cpp.o.d"
  "mpi2_sync_modes"
  "mpi2_sync_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi2_sync_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
