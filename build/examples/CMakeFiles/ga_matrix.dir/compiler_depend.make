# Empty compiler generated dependencies file for ga_matrix.
# This may be replaced when dependencies are built.
