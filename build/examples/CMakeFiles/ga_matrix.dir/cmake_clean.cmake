file(REMOVE_RECURSE
  "CMakeFiles/ga_matrix.dir/ga_matrix.cpp.o"
  "CMakeFiles/ga_matrix.dir/ga_matrix.cpp.o.d"
  "ga_matrix"
  "ga_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
