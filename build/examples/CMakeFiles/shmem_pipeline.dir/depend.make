# Empty dependencies file for shmem_pipeline.
# This may be replaced when dependencies are built.
