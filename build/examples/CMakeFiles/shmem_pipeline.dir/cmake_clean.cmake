file(REMOVE_RECURSE
  "CMakeFiles/shmem_pipeline.dir/shmem_pipeline.cpp.o"
  "CMakeFiles/shmem_pipeline.dir/shmem_pipeline.cpp.o.d"
  "shmem_pipeline"
  "shmem_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shmem_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
