file(REMOVE_RECURSE
  "CMakeFiles/global_counter.dir/global_counter.cpp.o"
  "CMakeFiles/global_counter.dir/global_counter.cpp.o.d"
  "global_counter"
  "global_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
