# Empty dependencies file for global_counter.
# This may be replaced when dependencies are built.
