# Empty compiler generated dependencies file for global_counter.
# This may be replaced when dependencies are built.
