file(REMOVE_RECURSE
  "CMakeFiles/tab_datatype.dir/bench/tab_datatype.cpp.o"
  "CMakeFiles/tab_datatype.dir/bench/tab_datatype.cpp.o.d"
  "bench/tab_datatype"
  "bench/tab_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
