# Empty compiler generated dependencies file for tab_datatype.
# This may be replaced when dependencies are built.
