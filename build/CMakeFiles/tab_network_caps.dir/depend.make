# Empty dependencies file for tab_network_caps.
# This may be replaced when dependencies are built.
