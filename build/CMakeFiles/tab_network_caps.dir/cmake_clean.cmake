file(REMOVE_RECURSE
  "CMakeFiles/tab_network_caps.dir/bench/tab_network_caps.cpp.o"
  "CMakeFiles/tab_network_caps.dir/bench/tab_network_caps.cpp.o.d"
  "bench/tab_network_caps"
  "bench/tab_network_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_network_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
