file(REMOVE_RECURSE
  "CMakeFiles/fig2_attribute_cost.dir/bench/fig2_attribute_cost.cpp.o"
  "CMakeFiles/fig2_attribute_cost.dir/bench/fig2_attribute_cost.cpp.o.d"
  "bench/fig2_attribute_cost"
  "bench/fig2_attribute_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_attribute_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
