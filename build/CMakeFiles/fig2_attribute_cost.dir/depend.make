# Empty dependencies file for fig2_attribute_cost.
# This may be replaced when dependencies are built.
