file(REMOVE_RECURSE
  "CMakeFiles/tab_noncoherent.dir/bench/tab_noncoherent.cpp.o"
  "CMakeFiles/tab_noncoherent.dir/bench/tab_noncoherent.cpp.o.d"
  "bench/tab_noncoherent"
  "bench/tab_noncoherent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_noncoherent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
