# Empty dependencies file for tab_noncoherent.
# This may be replaced when dependencies are built.
