file(REMOVE_RECURSE
  "CMakeFiles/tab_api_comparison.dir/bench/tab_api_comparison.cpp.o"
  "CMakeFiles/tab_api_comparison.dir/bench/tab_api_comparison.cpp.o.d"
  "bench/tab_api_comparison"
  "bench/tab_api_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_api_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
