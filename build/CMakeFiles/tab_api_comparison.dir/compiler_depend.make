# Empty compiler generated dependencies file for tab_api_comparison.
# This may be replaced when dependencies are built.
