file(REMOVE_RECURSE
  "CMakeFiles/tab_sync_modes.dir/bench/tab_sync_modes.cpp.o"
  "CMakeFiles/tab_sync_modes.dir/bench/tab_sync_modes.cpp.o.d"
  "bench/tab_sync_modes"
  "bench/tab_sync_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sync_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
