# Empty compiler generated dependencies file for tab_sync_modes.
# This may be replaced when dependencies are built.
