file(REMOVE_RECURSE
  "CMakeFiles/tab_overlap.dir/bench/tab_overlap.cpp.o"
  "CMakeFiles/tab_overlap.dir/bench/tab_overlap.cpp.o.d"
  "bench/tab_overlap"
  "bench/tab_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
