# Empty dependencies file for tab_overlap.
# This may be replaced when dependencies are built.
