file(REMOVE_RECURSE
  "CMakeFiles/tab_rmw.dir/bench/tab_rmw.cpp.o"
  "CMakeFiles/tab_rmw.dir/bench/tab_rmw.cpp.o.d"
  "bench/tab_rmw"
  "bench/tab_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
