# Empty compiler generated dependencies file for tab_rmw.
# This may be replaced when dependencies are built.
