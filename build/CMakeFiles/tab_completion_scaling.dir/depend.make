# Empty dependencies file for tab_completion_scaling.
# This may be replaced when dependencies are built.
