file(REMOVE_RECURSE
  "CMakeFiles/tab_completion_scaling.dir/bench/tab_completion_scaling.cpp.o"
  "CMakeFiles/tab_completion_scaling.dir/bench/tab_completion_scaling.cpp.o.d"
  "bench/tab_completion_scaling"
  "bench/tab_completion_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_completion_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
