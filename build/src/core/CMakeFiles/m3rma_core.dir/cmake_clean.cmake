file(REMOVE_RECURSE
  "CMakeFiles/m3rma_core.dir/rma_engine.cpp.o"
  "CMakeFiles/m3rma_core.dir/rma_engine.cpp.o.d"
  "CMakeFiles/m3rma_core.dir/target_mem.cpp.o"
  "CMakeFiles/m3rma_core.dir/target_mem.cpp.o.d"
  "libm3rma_core.a"
  "libm3rma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
