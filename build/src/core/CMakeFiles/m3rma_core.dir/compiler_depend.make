# Empty compiler generated dependencies file for m3rma_core.
# This may be replaced when dependencies are built.
