file(REMOVE_RECURSE
  "libm3rma_core.a"
)
