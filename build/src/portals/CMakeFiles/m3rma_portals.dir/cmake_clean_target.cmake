file(REMOVE_RECURSE
  "libm3rma_portals.a"
)
