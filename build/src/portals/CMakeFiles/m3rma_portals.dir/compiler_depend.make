# Empty compiler generated dependencies file for m3rma_portals.
# This may be replaced when dependencies are built.
