file(REMOVE_RECURSE
  "CMakeFiles/m3rma_portals.dir/atomics.cpp.o"
  "CMakeFiles/m3rma_portals.dir/atomics.cpp.o.d"
  "CMakeFiles/m3rma_portals.dir/portals.cpp.o"
  "CMakeFiles/m3rma_portals.dir/portals.cpp.o.d"
  "libm3rma_portals.a"
  "libm3rma_portals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_portals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
