file(REMOVE_RECURSE
  "CMakeFiles/m3rma_shmem.dir/shmem.cpp.o"
  "CMakeFiles/m3rma_shmem.dir/shmem.cpp.o.d"
  "libm3rma_shmem.a"
  "libm3rma_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
