# Empty dependencies file for m3rma_shmem.
# This may be replaced when dependencies are built.
