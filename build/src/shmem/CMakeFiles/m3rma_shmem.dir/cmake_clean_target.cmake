file(REMOVE_RECURSE
  "libm3rma_shmem.a"
)
