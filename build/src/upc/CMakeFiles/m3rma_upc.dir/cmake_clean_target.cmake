file(REMOVE_RECURSE
  "libm3rma_upc.a"
)
