# Empty dependencies file for m3rma_upc.
# This may be replaced when dependencies are built.
