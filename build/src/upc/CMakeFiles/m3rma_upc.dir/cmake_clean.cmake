file(REMOVE_RECURSE
  "CMakeFiles/m3rma_upc.dir/upc_runtime.cpp.o"
  "CMakeFiles/m3rma_upc.dir/upc_runtime.cpp.o.d"
  "libm3rma_upc.a"
  "libm3rma_upc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_upc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
