file(REMOVE_RECURSE
  "libm3rma_mpi2.a"
)
