# Empty compiler generated dependencies file for m3rma_mpi2.
# This may be replaced when dependencies are built.
