file(REMOVE_RECURSE
  "CMakeFiles/m3rma_mpi2.dir/win.cpp.o"
  "CMakeFiles/m3rma_mpi2.dir/win.cpp.o.d"
  "libm3rma_mpi2.a"
  "libm3rma_mpi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_mpi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
