# Empty compiler generated dependencies file for m3rma_galib.
# This may be replaced when dependencies are built.
