file(REMOVE_RECURSE
  "CMakeFiles/m3rma_galib.dir/global_array.cpp.o"
  "CMakeFiles/m3rma_galib.dir/global_array.cpp.o.d"
  "libm3rma_galib.a"
  "libm3rma_galib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_galib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
