file(REMOVE_RECURSE
  "libm3rma_galib.a"
)
