file(REMOVE_RECURSE
  "CMakeFiles/m3rma_memsim.dir/memory_domain.cpp.o"
  "CMakeFiles/m3rma_memsim.dir/memory_domain.cpp.o.d"
  "libm3rma_memsim.a"
  "libm3rma_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
