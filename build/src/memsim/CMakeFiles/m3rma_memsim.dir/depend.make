# Empty dependencies file for m3rma_memsim.
# This may be replaced when dependencies are built.
