file(REMOVE_RECURSE
  "libm3rma_memsim.a"
)
