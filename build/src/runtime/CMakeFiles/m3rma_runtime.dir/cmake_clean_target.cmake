file(REMOVE_RECURSE
  "libm3rma_runtime.a"
)
