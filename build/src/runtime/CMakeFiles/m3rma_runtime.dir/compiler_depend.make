# Empty compiler generated dependencies file for m3rma_runtime.
# This may be replaced when dependencies are built.
