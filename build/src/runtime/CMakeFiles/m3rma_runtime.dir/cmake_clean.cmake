file(REMOVE_RECURSE
  "CMakeFiles/m3rma_runtime.dir/comm.cpp.o"
  "CMakeFiles/m3rma_runtime.dir/comm.cpp.o.d"
  "CMakeFiles/m3rma_runtime.dir/p2p.cpp.o"
  "CMakeFiles/m3rma_runtime.dir/p2p.cpp.o.d"
  "CMakeFiles/m3rma_runtime.dir/world.cpp.o"
  "CMakeFiles/m3rma_runtime.dir/world.cpp.o.d"
  "libm3rma_runtime.a"
  "libm3rma_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
