file(REMOVE_RECURSE
  "CMakeFiles/m3rma_datatype.dir/datatype.cpp.o"
  "CMakeFiles/m3rma_datatype.dir/datatype.cpp.o.d"
  "libm3rma_datatype.a"
  "libm3rma_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
