# Empty compiler generated dependencies file for m3rma_datatype.
# This may be replaced when dependencies are built.
