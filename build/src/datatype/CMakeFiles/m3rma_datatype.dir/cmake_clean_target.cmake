file(REMOVE_RECURSE
  "libm3rma_datatype.a"
)
