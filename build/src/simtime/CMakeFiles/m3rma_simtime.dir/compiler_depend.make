# Empty compiler generated dependencies file for m3rma_simtime.
# This may be replaced when dependencies are built.
