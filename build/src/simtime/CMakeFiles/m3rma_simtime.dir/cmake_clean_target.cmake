file(REMOVE_RECURSE
  "libm3rma_simtime.a"
)
