file(REMOVE_RECURSE
  "CMakeFiles/m3rma_simtime.dir/engine.cpp.o"
  "CMakeFiles/m3rma_simtime.dir/engine.cpp.o.d"
  "libm3rma_simtime.a"
  "libm3rma_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
