# CMake generated Testfile for 
# Source directory: /root/repo/src/armci
# Build directory: /root/repo/build/src/armci
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
