# Empty compiler generated dependencies file for m3rma_armci.
# This may be replaced when dependencies are built.
