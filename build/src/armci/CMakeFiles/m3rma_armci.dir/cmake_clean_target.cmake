file(REMOVE_RECURSE
  "libm3rma_armci.a"
)
