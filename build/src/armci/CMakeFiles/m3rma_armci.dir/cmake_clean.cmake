file(REMOVE_RECURSE
  "CMakeFiles/m3rma_armci.dir/armci.cpp.o"
  "CMakeFiles/m3rma_armci.dir/armci.cpp.o.d"
  "libm3rma_armci.a"
  "libm3rma_armci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_armci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
