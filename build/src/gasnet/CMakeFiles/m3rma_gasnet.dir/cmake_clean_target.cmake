file(REMOVE_RECURSE
  "libm3rma_gasnet.a"
)
