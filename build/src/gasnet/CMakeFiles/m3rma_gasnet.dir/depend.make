# Empty dependencies file for m3rma_gasnet.
# This may be replaced when dependencies are built.
