file(REMOVE_RECURSE
  "CMakeFiles/m3rma_gasnet.dir/gasnet.cpp.o"
  "CMakeFiles/m3rma_gasnet.dir/gasnet.cpp.o.d"
  "libm3rma_gasnet.a"
  "libm3rma_gasnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_gasnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
