
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gasnet/gasnet.cpp" "src/gasnet/CMakeFiles/m3rma_gasnet.dir/gasnet.cpp.o" "gcc" "src/gasnet/CMakeFiles/m3rma_gasnet.dir/gasnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/m3rma_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/portals/CMakeFiles/m3rma_portals.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/m3rma_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/m3rma_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/m3rma_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m3rma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
