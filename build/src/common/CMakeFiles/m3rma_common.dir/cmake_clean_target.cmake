file(REMOVE_RECURSE
  "libm3rma_common.a"
)
