# Empty dependencies file for m3rma_common.
# This may be replaced when dependencies are built.
