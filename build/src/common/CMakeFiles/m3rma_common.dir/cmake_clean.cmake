file(REMOVE_RECURSE
  "CMakeFiles/m3rma_common.dir/diagnostics.cpp.o"
  "CMakeFiles/m3rma_common.dir/diagnostics.cpp.o.d"
  "CMakeFiles/m3rma_common.dir/rng.cpp.o"
  "CMakeFiles/m3rma_common.dir/rng.cpp.o.d"
  "libm3rma_common.a"
  "libm3rma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
