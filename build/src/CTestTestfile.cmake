# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("simtime")
subdirs("fabric")
subdirs("memsim")
subdirs("datatype")
subdirs("portals")
subdirs("runtime")
subdirs("core")
subdirs("mpi2")
subdirs("armci")
subdirs("gasnet")
subdirs("shmem")
subdirs("galib")
subdirs("upc")
