file(REMOVE_RECURSE
  "CMakeFiles/m3rma_fabric.dir/fabric.cpp.o"
  "CMakeFiles/m3rma_fabric.dir/fabric.cpp.o.d"
  "libm3rma_fabric.a"
  "libm3rma_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3rma_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
