file(REMOVE_RECURSE
  "libm3rma_fabric.a"
)
