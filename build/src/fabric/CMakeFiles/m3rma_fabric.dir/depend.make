# Empty dependencies file for m3rma_fabric.
# This may be replaced when dependencies are built.
