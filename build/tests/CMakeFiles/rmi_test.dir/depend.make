# Empty dependencies file for rmi_test.
# This may be replaced when dependencies are built.
