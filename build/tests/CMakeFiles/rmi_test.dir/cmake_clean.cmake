file(REMOVE_RECURSE
  "CMakeFiles/rmi_test.dir/rmi_test.cpp.o"
  "CMakeFiles/rmi_test.dir/rmi_test.cpp.o.d"
  "rmi_test"
  "rmi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
