file(REMOVE_RECURSE
  "CMakeFiles/armci_gasnet_test.dir/armci_gasnet_test.cpp.o"
  "CMakeFiles/armci_gasnet_test.dir/armci_gasnet_test.cpp.o.d"
  "armci_gasnet_test"
  "armci_gasnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_gasnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
