# Empty dependencies file for armci_gasnet_test.
# This may be replaced when dependencies are built.
