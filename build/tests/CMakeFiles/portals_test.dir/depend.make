# Empty dependencies file for portals_test.
# This may be replaced when dependencies are built.
