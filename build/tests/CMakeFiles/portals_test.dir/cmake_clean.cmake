file(REMOVE_RECURSE
  "CMakeFiles/portals_test.dir/portals_test.cpp.o"
  "CMakeFiles/portals_test.dir/portals_test.cpp.o.d"
  "portals_test"
  "portals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
