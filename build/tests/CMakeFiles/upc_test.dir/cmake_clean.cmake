file(REMOVE_RECURSE
  "CMakeFiles/upc_test.dir/upc_test.cpp.o"
  "CMakeFiles/upc_test.dir/upc_test.cpp.o.d"
  "upc_test"
  "upc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
