file(REMOVE_RECURSE
  "CMakeFiles/galib_test.dir/galib_test.cpp.o"
  "CMakeFiles/galib_test.dir/galib_test.cpp.o.d"
  "galib_test"
  "galib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
