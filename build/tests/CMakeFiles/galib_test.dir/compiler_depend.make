# Empty compiler generated dependencies file for galib_test.
# This may be replaced when dependencies are built.
