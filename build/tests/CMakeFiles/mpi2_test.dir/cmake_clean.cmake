file(REMOVE_RECURSE
  "CMakeFiles/mpi2_test.dir/mpi2_test.cpp.o"
  "CMakeFiles/mpi2_test.dir/mpi2_test.cpp.o.d"
  "mpi2_test"
  "mpi2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
