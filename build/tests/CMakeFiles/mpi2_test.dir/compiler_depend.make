# Empty compiler generated dependencies file for mpi2_test.
# This may be replaced when dependencies are built.
